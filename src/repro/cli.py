"""Command-line interface: run and render the paper's experiments, and
drive the streaming session and serving layers.

::

    python -m repro list
    python -m repro run fig4_workers --scale 0.1 --out results/
    python -m repro run table5_prediction --scale 0.5
    python -m repro report results/fig4_workers.json
    python -m repro dump --workers 2000 --tasks 2000 --out events.jsonl
    python -m repro dump --churn 0.1 --move-rate 0.05 --out churny.jsonl
    python -m repro replay events.jsonl --algorithm polar --snapshot-every 500
    python -m repro replay events.jsonl --algorithm tgoa \\
        --halfway from-forecast --history yesterday.jsonl --predictor hp-msi
    python -m repro replay today.jsonl --algorithm polar \\
        --guide from-forecast --history yesterday.jsonl --predictor hp-msi
    python -m repro serve events.jsonl --algorithm greedy --shards 4 \\
        --port 7654 --metrics-port 7655
    python -m repro serve events.jsonl --algorithm greedy --workers 4 \\
        --port 7654 --metrics-port 7655
    python -m repro serve events.jsonl --algorithm greedy --workers 4 \\
        --transport shm --port 7654 --metrics-port 7655
    python -m repro loadgen events.jsonl --port 7654 --rate 5000 --drain
    python -m repro loadgen --churn 0.1 --port 7654 --drain

``run`` prints the same rows/series the paper's figure or table reports
and optionally archives the JSON; ``report`` re-renders archived JSON.
``dump`` writes a synthetic event stream as JSONL (with a config header
recording its discretisation; ``--churn`` / ``--move-rate`` sample
departure and move events into it) and ``replay`` feeds a JSONL stream
— from a file or stdin (``-``) — event-by-event through a
:class:`~repro.serving.session.MatchingSession`, printing mid-stream
snapshots and the final outcome.  ``serve`` runs the asyncio serving
gateway (sharded sessions, JSONL socket ingest, ``/metrics`` +
``/snapshot`` HTTP endpoint; ``--workers N`` forks one worker process
per shard — bit-identical to the in-process gateway, with real cores
behind the matchers; ``--transport shm`` moves the worker IPC onto
shared-memory event rings) and ``loadgen`` replays a dumped or
synthetic stream against it at a target rate, reporting throughput and
latency percentiles.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.report import render
from repro.experiments.results import SweepResult, TableResult

__all__ = ["main", "build_parser"]

_REPLAY_ALGORITHMS = (
    "greedy",
    "greedy-indexed",
    "gr",
    "tgoa",
    "polar",
    "polar-op",
)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FTOA reproduction (Tong et al., VLDB 2017) experiment harness",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list all registered experiments")

    run = commands.add_parser("run", help="run one experiment and print its rows")
    run.add_argument("experiment_id", help="registry id, e.g. fig4_workers")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="population scale (default: the experiment's default)",
    )
    run.add_argument(
        "--no-memory",
        action="store_true",
        help="skip the tracemalloc pass (halves runtime)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep cells (default 1 = serial; "
        "matching sizes are identical either way)",
    )
    run.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to archive the JSON result into",
    )

    report = commands.add_parser("report", help="render archived JSON results")
    report.add_argument("paths", nargs="+", type=Path, help="result JSON files")

    dump = commands.add_parser(
        "dump",
        help="write a synthetic event stream as JSONL (--churn/--move-rate "
        "sample departure and move events into it)",
    )
    dump.add_argument("--workers", type=int, default=2_000, help="|W| (default 2000)")
    dump.add_argument("--tasks", type=int, default=2_000, help="|R| (default 2000)")
    dump.add_argument(
        "--grid-side", type=int, default=50, help="grid cells per side (default 50)"
    )
    dump.add_argument(
        "--n-slots", type=int, default=48, help="time slots per day (default 48)"
    )
    dump.add_argument("--seed", type=int, default=0, help="generator seed")
    _add_churn_arguments(dump)
    dump.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSONL path (default: stdout)",
    )

    replay = commands.add_parser(
        "replay",
        help="feed a JSONL arrival stream through a matching session",
    )
    replay.add_argument(
        "path", help="JSONL stream path, or '-' to read from stdin"
    )
    replay.add_argument(
        "--algorithm",
        choices=_REPLAY_ALGORITHMS,
        default="greedy",
        help="matcher to drive (default: greedy)",
    )
    replay.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="print a session snapshot every N arrivals",
    )
    replay.add_argument(
        "--window-minutes",
        type=float,
        default=None,
        help="GR batching window (default: a tenth of a slot)",
    )
    replay.add_argument(
        "--halfway",
        default=None,
        help="TGOA phase boundary: an arrival count, or 'from-forecast' "
        "to derive it from a volume forecast fit on --history with "
        "--predictor (default: half the stream)",
    )
    replay.add_argument(
        "--seed", type=int, default=0, help="POLAR node-choice seed"
    )
    replay.add_argument(
        "--speed",
        type=float,
        default=None,
        help="worker velocity override in distance units per minute "
        "(default: the stream config record's velocity)",
    )
    _add_guide_arguments(replay)

    serve = commands.add_parser(
        "serve",
        help="run the async serving gateway (sharded sessions, JSONL "
        "socket ingest, /metrics endpoint)",
    )
    serve.add_argument(
        "config",
        help="JSONL stream whose config record fixes the discretisation "
        "(its events feed the self-guide and the TGOA halfway default)",
    )
    serve.add_argument(
        "--algorithm",
        choices=_REPLAY_ALGORITHMS,
        default="greedy",
        help="matcher driven by every shard (default: greedy)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count for the consistent spatial hash (default 1 — "
        "bit-identical to an offline session)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run each shard's matcher in its own forked worker process: "
        "0 (default) keeps every shard on the gateway event loop; N > 0 "
        "forks N shard workers (implies --shards N; bit-identical to the "
        "in-process N-shard gateway)",
    )
    serve.add_argument(
        "--transport",
        choices=("pipe", "shm"),
        default="pipe",
        help="worker IPC transport (needs --workers): 'pipe' "
        "(length-prefixed pickle frames, default) or 'shm' "
        "(shared-memory rings of fixed-width event records; "
        "bit-identical, lower per-event overhead)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=7654,
        help="TCP ingest port (0 = ephemeral, printed at startup)",
    )
    serve.add_argument(
        "--unix", default=None, help="additional unix-socket ingest path"
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=7655,
        help="HTTP /metrics + /snapshot port (0 = ephemeral)",
    )
    serve.add_argument(
        "--backpressure",
        type=int,
        default=1024,
        help="ingest queue bound (default 1024)",
    )
    serve.add_argument(
        "--max-worker-restarts",
        type=int,
        default=None,
        help="crash recoveries per shard worker before it degrades "
        "(default: the pool's default of 3; 0 disables recovery)",
    )
    serve.add_argument(
        "--degraded-mode",
        choices=("reject", "reroute"),
        default="reject",
        help="a shard out of restarts rejects its events with error "
        "acks (default) or retires from the hash ring so new arrivals "
        "reroute to surviving shards",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        help="inject scripted worker faults (needs --workers), e.g. "
        "'kill:shard=0,at=50' or 'kill:shard=0,at=5,sticky' — see "
        "repro.serving.faults for the grammar",
    )
    serve.add_argument(
        "--auth-token",
        default=None,
        help="shared secret for ingest sockets: clients must open with "
        '{"kind": "auth", "token": ...} or are disconnected',
    )
    serve.add_argument(
        "--window-minutes",
        type=float,
        default=None,
        help="GR batching window (default: a tenth of a slot)",
    )
    serve.add_argument(
        "--halfway",
        default=None,
        help="TGOA phase boundary: an arrival count, or 'from-forecast' "
        "to derive it from a volume forecast fit on --history with "
        "--predictor (default: half the config stream)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="POLAR node-choice seed"
    )
    serve.add_argument(
        "--speed",
        type=float,
        default=None,
        help="worker velocity override (default: the config record's)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the telemetry trace recorder as Chrome trace_event "
        "JSON on shutdown (chrome://tracing / Perfetto; the live ring "
        "is also at /trace on the metrics port)",
    )
    serve.add_argument(
        "--sample-every",
        type=int,
        default=None,
        help="telemetry sampling rate: stamp 1 in N ingested events "
        "(default 128; 1 = every event, 0 = disable telemetry)",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="threshold for the structured per-shard loggers (default "
        "info; the startup banner and drain summary always print)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of plain text",
    )
    _add_guide_arguments(serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="replay a JSONL or synthetic stream against a serving "
        "gateway, reporting throughput and latency percentiles",
    )
    loadgen.add_argument(
        "path",
        nargs="?",
        default=None,
        help="JSONL stream to replay ('-' = stdin; omit for a synthetic "
        "stream from the --workers/--tasks knobs)",
    )
    loadgen.add_argument("--host", default="127.0.0.1", help="gateway host")
    loadgen.add_argument(
        "--port", type=int, default=7654, help="gateway TCP ingest port"
    )
    loadgen.add_argument(
        "--unix", default=None, help="gateway unix-socket path (overrides TCP)"
    )
    loadgen.add_argument(
        "--auth-token",
        default=None,
        help="shared secret for a gateway started with --auth-token",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        help="target arrivals per second (default: unthrottled)",
    )
    loadgen.add_argument(
        "--drain",
        action="store_true",
        help="drain the gateway after the stream and print its final snapshot",
    )
    loadgen.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of a summary line",
    )
    loadgen.add_argument(
        "--workers", type=int, default=2_000, help="synthetic |W| (default 2000)"
    )
    loadgen.add_argument(
        "--tasks", type=int, default=2_000, help="synthetic |R| (default 2000)"
    )
    loadgen.add_argument(
        "--grid-side", type=int, default=50, help="synthetic grid side"
    )
    loadgen.add_argument(
        "--n-slots", type=int, default=48, help="synthetic slots per day"
    )
    loadgen.add_argument(
        "--seed", type=int, default=0, help="synthetic generator seed"
    )
    _add_churn_arguments(loadgen)
    return parser


def _add_churn_arguments(subparser) -> None:
    """Churn sampling options shared by dump and loadgen."""
    subparser.add_argument(
        "--churn",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability an entity departs before its deadline "
        "(default 0 — no churn events)",
    )
    subparser.add_argument(
        "--move-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability an entity relocates once mid-window (default 0)",
    )
    subparser.add_argument(
        "--churn-seed",
        type=int,
        default=0,
        help="churn sampling seed (default 0)",
    )


def _add_guide_arguments(subparser) -> None:
    """POLAR / POLAR-OP guide options shared by replay and serve."""
    subparser.add_argument(
        "--guide",
        choices=("self", "from-forecast"),
        default="self",
        help="guide source for polar/polar-op: 'self' (the stream's own "
        "counts — perfect hindsight) or 'from-forecast' (fit a predictor "
        "on --history)",
    )
    subparser.add_argument(
        "--history",
        default=None,
        help="history JSONL the from-forecast guide trains on",
    )
    subparser.add_argument(
        "--predictor",
        default="HA",
        help="predictor for --guide from-forecast: HA, ARIMA, GBRT, PAQ, "
        "LR, NN or HP-MSI (default: HA)",
    )


def _cmd_list() -> int:
    width = max(len(spec.experiment_id) for spec in list_experiments())
    for spec in list_experiments():
        print(
            f"{spec.experiment_id.ljust(width)}  {spec.paper_ref:<22}  "
            f"(scale={spec.default_scale:g})  {spec.description}"
        )
    return 0


def _cmd_run(
    experiment_id: str,
    scale: Optional[float],
    no_memory: bool,
    out,
    jobs: int = 1,
) -> int:
    spec = get_experiment(experiment_id)
    effective_scale = spec.default_scale if scale is None else scale
    kwargs = {"scale": effective_scale, "measure_memory": not no_memory}
    if spec.supports_jobs:
        kwargs["jobs"] = jobs
    elif jobs != 1:
        print(f"[{experiment_id} does not support --jobs; running serially]")
    started = time.perf_counter()
    result = spec.run(**kwargs)
    elapsed = time.perf_counter() - started
    print(render(result))
    print(f"\n[{experiment_id} finished in {elapsed:.1f}s at scale {effective_scale:g}]")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{experiment_id}.json"
        result.save(path)
        print(f"[archived to {path}]")
    return 0


def _cmd_report(paths) -> int:
    status = 0
    for path in paths:
        text = Path(path).read_text()
        try:
            result = SweepResult.from_json(text)
        except ReproError:
            result = TableResult.from_json(text)
        print(render(result))
        print()
    return status


def _churn_config(args):
    """The :class:`~repro.streams.churn.ChurnConfig` of a CLI run, or
    None when both rates are zero."""
    from repro.streams.churn import ChurnConfig

    if args.churn == 0.0 and args.move_rate == 0.0:
        return None
    return ChurnConfig(
        departure_rate=args.churn,
        move_rate=args.move_rate,
        seed=args.churn_seed,
    )


def _cmd_dump(args) -> int:
    from repro.serving.replay import dump_stream, stream_config
    from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

    config = SyntheticConfig(
        n_workers=args.workers,
        n_tasks=args.tasks,
        grid_side=args.grid_side,
        n_slots=args.n_slots,
        seed=args.seed,
    )
    generator = SyntheticGenerator(config)
    instance = generator.generate()
    churn = _churn_config(args)
    events = (
        instance.arrival_stream() if churn is None else instance.churn_stream(churn)
    )
    header = stream_config(instance.grid, instance.timeline, instance.travel)
    if args.out is None:
        count = dump_stream(events, sys.stdout, config=header)
    else:
        with open(args.out, "w") as fp:
            count = dump_stream(events, fp, config=header)
        print(f"[{count} events written to {args.out}]")
    return 0


def _replay_context(config: Optional[dict], speed: Optional[float]):
    """(grid, timeline, travel) for a replay, from the stream's config
    record with CLI overrides."""
    from repro.spatial.geometry import BoundingBox
    from repro.spatial.grid import Grid
    from repro.spatial.timeslots import Timeline
    from repro.spatial.travel import TravelModel

    if config is None:
        raise ConfigurationError(
            "stream has no config record; generate streams with 'repro dump' "
            "or prepend a {'kind': 'config', ...} line"
        )
    try:
        x_min, y_min, x_max, y_max = config["bounds"]
        grid = Grid(
            BoundingBox(x_min, y_min, x_max, y_max),
            int(config["nx"]),
            int(config["ny"]),
        )
        timeline = Timeline(
            int(config["n_slots"]),
            float(config["slot_minutes"]),
            float(config.get("t0", 0.0)),
        )
        velocity = float(config["velocity"]) if speed is None else speed
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed stream config record: {exc}") from exc
    return grid, timeline, TravelModel(velocity=velocity)


def _load_jsonl(path):
    """``(config, events)`` from a JSONL path or '-' (stdin)."""
    from repro.serving.replay import load_stream

    if path == "-":
        return load_stream(sys.stdin)
    try:
        fp = open(path)
    except OSError as exc:
        raise ConfigurationError(f"cannot open stream {path!r}: {exc}") from exc
    with fp:
        return load_stream(fp)


def _resolve_guides(args, events, grid, timeline, travel, n_shards: int):
    """The POLAR guide(s) a replay/serve run should use.

    ``--guide self`` builds the perfect-hindsight self-guide from the
    stream's own counts; ``--guide from-forecast`` fits ``--predictor``
    on the ``--history`` JSONL and forecasts the serving day.  With
    ``n_shards > 1`` the count tensors are split by the gateway's
    consistent-hash cell ownership and one guide is built *per shard* —
    a global guide pairs predicted nodes across region shards, and
    those partners can never meet inside one shard's matcher.

    Returns a list: one guide for an unsharded run, ``n_shards`` guides
    (indexed by shard id) otherwise.
    """
    from repro.errors import SimulationError

    if args.guide == "from-forecast":
        from repro.prediction import make_predictor
        from repro.serving.forecast import forecast_counts

        if args.history is None:
            raise ConfigurationError(
                "--guide from-forecast requires --history <stream.jsonl>"
            )
        try:
            # Validate the name before the (possibly large) history is
            # read; predictor-internal errors later stay unwrapped.
            make_predictor(args.predictor, seed=args.seed)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        _config, history = _load_jsonl(args.history)
        worker_counts, task_counts, worker_duration, task_duration = (
            forecast_counts(
                history, grid, timeline, predictor=args.predictor,
                seed=args.seed,
            )
        )
        source = f"{args.predictor} forecast guide built from {len(history)} history events"
    else:
        from repro.serving.replay import stream_counts

        worker_counts, task_counts, worker_duration, task_duration = (
            stream_counts(events, grid, timeline)
        )
        source = "self-guide built"
    if worker_duration <= 0 or task_duration <= 0:
        raise SimulationError(
            "the guide stream must contain both workers and tasks to "
            "estimate durations"
        )
    if n_shards > 1:
        from repro.serving.shard import ShardRouter, build_shard_guides

        router = ShardRouter(grid, n_shards)
        guides = build_shard_guides(
            worker_counts, task_counts, router, timeline, travel,
            worker_duration, task_duration,
        )
        pairs = sum(guide.matched_pairs for guide in guides)
        print(
            f"[{source}: {len(guides)} per-shard guides, "
            f"{pairs} matched node pairs total]"
        )
        return guides
    from repro.core.guide import build_guide

    guide = build_guide(
        worker_counts, task_counts, grid, timeline, travel,
        worker_duration, task_duration,
    )
    print(f"[{source}: {guide.matched_pairs} matched node pairs]")
    return [guide]


def _resolve_halfway(args, events, grid, timeline) -> int:
    """TGOA's phase boundary for a replay/serve run.

    ``--halfway N`` pins it; ``--halfway from-forecast`` derives it from
    a volume forecast fit on ``--history`` with ``--predictor`` (the
    online deployment's answer — the stream length is unknowable up
    front); the default is half the config stream's arrival count.
    """
    if args.halfway == "from-forecast":
        from repro.prediction import make_predictor
        from repro.serving.forecast import forecast_halfway

        if args.history is None:
            raise ConfigurationError(
                "--halfway from-forecast requires --history <stream.jsonl>"
            )
        try:
            # Validate the name before the (possibly large) history is
            # read; predictor-internal errors later stay unwrapped.
            make_predictor(args.predictor, seed=args.seed)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        _config, history = _load_jsonl(args.history)
        halfway = forecast_halfway(
            history, grid, timeline, predictor=args.predictor, seed=args.seed
        )
        print(
            f"[{args.predictor} volume forecast from {len(history)} history "
            f"events: halfway={halfway}]"
        )
        return halfway
    if args.halfway is not None:
        try:
            return int(args.halfway)
        except ValueError:
            raise ConfigurationError(
                f"--halfway must be an integer or 'from-forecast', "
                f"got {args.halfway!r}"
            ) from None
    from repro.model.events import Arrival

    arrivals = sum(1 for event in events if isinstance(event, Arrival))
    if arrivals == 0:
        raise ConfigurationError(
            "tgoa needs --halfway when the config stream has no arrivals"
        )
    return arrivals // 2


def _matcher_factory(args, events, grid, timeline, travel):
    """A per-shard matcher builder for ``--algorithm``.

    Shared by ``replay`` (which builds one matcher: ``factory(0)``) and
    ``serve`` (one private matcher per shard).  Guide construction
    happens once, outside the factory.
    """
    from repro.core.engine import (
        BatchMatcher,
        GreedyMatcher,
        PolarMatcher,
        PolarOpMatcher,
        TgoaMatcher,
    )

    algorithm = args.algorithm
    if algorithm == "greedy":
        return lambda shard: GreedyMatcher(travel, indexed=False)
    if algorithm == "greedy-indexed":
        return lambda shard: GreedyMatcher(travel, grid=grid, indexed=True)
    if algorithm == "gr":
        window = (
            timeline.slot_minutes / 10.0
            if args.window_minutes is None
            else args.window_minutes
        )
        return lambda shard: BatchMatcher(travel, grid, window)
    if algorithm == "tgoa":
        halfway = _resolve_halfway(args, events, grid, timeline)
        # TGOA's phase boundary is an arrival *count*; a shard only sees
        # its share of the stream, so a sharded gateway splits the
        # boundary evenly (consistent hashing spreads cells uniformly).
        # Without this, every shard would stay in phase 1 forever and
        # silently serve plain greedy.
        n_shards = max(1, getattr(args, "shards", 1))
        per_shard = max(1, halfway // n_shards) if halfway else 0
        return lambda shard: TgoaMatcher(travel, grid=grid, halfway=per_shard)
    n_shards = max(1, getattr(args, "shards", 1))
    guides = _resolve_guides(args, events, grid, timeline, travel, n_shards)
    if algorithm == "polar":
        return lambda shard: PolarMatcher(
            guides[shard % len(guides)], seed=args.seed
        )
    return lambda shard: PolarOpMatcher(
        guides[shard % len(guides)], seed=args.seed
    )


def _cmd_replay(args) -> int:
    from repro.serving.session import IteratorSource, MatchingSession

    config, events = _load_jsonl(args.path)
    grid, timeline, travel = _replay_context(config, args.speed)
    matcher = _matcher_factory(args, events, grid, timeline, travel)(0)
    session = MatchingSession(
        matcher,
        IteratorSource(events),
        snapshot_every=args.snapshot_every,
        on_snapshot=lambda snap: print(snap.summary()),
    )
    outcome = session.run()
    print(outcome.summary())
    return 0


def _check_port(value: int, flag: str) -> int:
    if not 0 <= value <= 65_535:
        raise ConfigurationError(f"{flag} must be in 0..65535, got {value}")
    return value


class _JsonLogFormatter(logging.Formatter):
    """One JSON object per log record (``--log-json``)."""

    def format(self, record: logging.LogRecord) -> str:
        import json

        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def _configure_logging(args) -> None:
    """Point the ``repro`` logger tree at stderr for a serve run.

    The gateway logs through per-shard child loggers
    (``repro.serving.gateway.shard.N``), so one handler here covers the
    whole serving stack; repeated configuration (tests run ``serve``
    many times in-process) replaces the handler instead of stacking.
    """
    logger = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    if args.log_json:
        handler.setFormatter(_JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    logger.handlers = [handler]
    logger.setLevel(getattr(logging, args.log_level.upper()))
    logger.propagate = False


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serving.gateway import Gateway

    _check_port(args.port, "--port")
    _check_port(args.metrics_port, "--metrics-port")
    backend = "inline"
    if args.workers < 0:
        raise ConfigurationError(f"--workers must be >= 0, got {args.workers}")
    if args.workers:
        # One forked worker process per shard: --workers N is the
        # N-shard gateway with real cores behind it, so the two flags
        # must agree when both are given.
        if args.shards not in (1, args.workers):
            raise ConfigurationError(
                f"--workers {args.workers} runs one process per shard; "
                f"pass --shards {args.workers} or omit --shards"
            )
        args.shards = args.workers
        backend = "process"
    if args.transport == "shm" and backend != "process":
        raise ConfigurationError(
            "--transport shm needs worker processes; pass --workers N"
        )
    fault_plan = None
    if args.fault_plan:
        from repro.serving.faults import FaultPlan

        if backend != "process":
            raise ConfigurationError(
                "--fault-plan injects faults into worker processes; "
                "pass --workers N"
            )
        fault_plan = FaultPlan.parse(args.fault_plan)
    _configure_logging(args)
    telemetry = None
    if args.sample_every is not None:
        from repro.serving.telemetry import Telemetry

        if args.sample_every < 0:
            raise ConfigurationError(
                f"--sample-every must be >= 0, got {args.sample_every}"
            )
        telemetry = Telemetry(
            sample_every=args.sample_every, n_shards=args.shards
        )
    config, events = _load_jsonl(args.config)
    grid, timeline, travel = _replay_context(config, args.speed)
    factory = _matcher_factory(args, events, grid, timeline, travel)
    gateway = Gateway(
        grid,
        factory,
        n_shards=args.shards,
        queue_size=args.backpressure,
        backend=backend,
        max_worker_restarts=args.max_worker_restarts,
        degraded_mode=args.degraded_mode,
        fault_plan=fault_plan,
        auth_token=args.auth_token,
        transport=args.transport,
        telemetry=telemetry,
    )
    return asyncio.run(_serve_async(gateway, args))


async def _serve_async(gateway, args) -> int:
    import asyncio
    import signal

    from repro.errors import GatewayError

    try:
        await gateway.start(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            metrics_host=args.host,
            metrics_port=args.metrics_port,
        )
    except OSError as exc:
        raise GatewayError(f"cannot bind gateway sockets: {exc}") from exc
    # Handlers before the banner: anyone scripting `serve` treats the
    # banner as "ready", and ready must include graceful-drain signals.
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(gateway.drain())
            )
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    where = (
        f"{args.workers} worker process(es), "
        f"{getattr(args, 'transport', 'pipe')} transport"
        if getattr(args, "workers", 0)
        else "in-process"
    )
    print(
        f"[gateway serving {args.algorithm} x{args.shards} shard(s) "
        f"({where}) on {args.host}:{gateway.tcp_port}"
        + (f" and {args.unix}" if args.unix else "")
        + f"; metrics on http://{args.host}:{gateway.metrics_port}/metrics]",
        flush=True,
    )
    if getattr(args, "fault_plan", None):
        from repro.serving.faults import FaultPlan

        print(
            f"[fault plan armed: {FaultPlan.parse(args.fault_plan).describe()}]",
            flush=True,
        )
    print(
        "[send {\"kind\": \"drain\"} or SIGINT/SIGTERM for a graceful drain]",
        flush=True,
    )
    snapshot = await gateway.wait_drained()
    await gateway.close()
    if getattr(args, "trace", None):
        import json

        with open(args.trace, "w") as handle:
            json.dump(gateway.telemetry.chrome_trace(), handle)
        print(f"[trace written to {args.trace}]", flush=True)
    print(snapshot.summary())
    from repro.serving.workers import ShardOutcome

    logger = logging.getLogger("repro.cli.serve")
    for shard_id, outcome in enumerate(gateway.shard_outcomes()):
        if outcome is None:  # pragma: no cover - legacy backends
            logger.getChild(f"shard.{shard_id}").error(
                "worker crashed, no outcome"
            )
        elif isinstance(outcome, ShardOutcome):
            print(f"  {outcome.summary()}")
        else:
            print(f"  shard: {outcome.summary()}")
    return 0


def _loadgen_events(args):
    """The event stream a loadgen run replays (file or synthetic,
    optionally with sampled churn merged in)."""
    churn = _churn_config(args)
    if args.path is not None:
        stream_config, events = _load_jsonl(args.path)
        if churn is None:
            return events
        from repro.model.events import Arrival
        from repro.streams.churn import with_churn

        arrivals = [event for event in events if isinstance(event, Arrival)]
        if len(arrivals) != len(events):
            raise ConfigurationError(
                "--churn/--move-rate cannot be applied to a stream that "
                "already contains churn events"
            )
        grid, _timeline, _travel = _replay_context(stream_config, None)
        return with_churn(arrivals, grid.bounds, churn)
    from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

    config = SyntheticConfig(
        n_workers=args.workers,
        n_tasks=args.tasks,
        grid_side=args.grid_side,
        n_slots=args.n_slots,
        seed=args.seed,
    )
    instance = SyntheticGenerator(config).generate()
    if churn is None:
        return instance.arrival_stream()
    return instance.churn_stream(churn)


def _cmd_loadgen(args) -> int:
    import json as json_module

    from repro.serving.loadgen import loadgen

    _check_port(args.port, "--port")
    events = _loadgen_events(args)
    try:
        report = loadgen(
            events,
            host=args.host,
            port=None if args.unix else args.port,
            unix_path=args.unix,
            rate=args.rate,
            drain=args.drain,
            auth_token=args.auth_token,
        )
    except OSError as exc:
        from repro.errors import GatewayError

        raise GatewayError(f"cannot reach the gateway: {exc}") from exc
    if args.json:
        print(json_module.dumps(report.as_dict(), indent=2))
    else:
        print(report.summary())
        table = report.stage_table()
        if table is not None:
            print(table)
        if report.snapshot is not None:
            print(
                f"[gateway drained: arrivals={report.snapshot['arrivals']} "
                f"matched={report.snapshot['matched']}]"
            )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(
                args.experiment_id, args.scale, args.no_memory, args.out, args.jobs
            )
        if args.command == "report":
            return _cmd_report(args.paths)
        if args.command == "dump":
            return _cmd_dump(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
