"""Movement-semantics audit of an assignment outcome.

Section 5.1 assumes "each pair matched based on the offline guide can be
matched in reality ... the use of discrete time slots and areas may
affect slightly the inequalities, [but] such differences can be
ignored".  This module *measures* that slack instead of assuming it:

Every matched pair is replayed under explicit movement semantics —

* the worker departs its arrival location at its arrival instant;
* a ``dispatched`` worker first heads for the centre of its target area
  (the guide's instruction) and diverts to the task's true location at
  the assignment instant (when the later of the two parties arrived);
* a ``stay``/undispatched worker departs its own location at the
  assignment instant;

— and the audit reports which pairs physically reach the task before its
deadline, plus the worst and mean lateness of the violators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import SimulationError
from repro.model.instance import Instance

__all__ = ["MovementAudit", "audit_outcome"]


@dataclass
class MovementAudit:
    """Audit result for one outcome.

    Attributes:
        algorithm: the audited algorithm's name.
        total_pairs: matched pairs replayed.
        feasible_pairs: pairs whose worker arrives by the task deadline.
        violations: ``(worker_id, task_id, lateness_minutes)`` for the
            rest.
    """

    algorithm: str
    total_pairs: int
    feasible_pairs: int
    violations: List[Tuple[int, int, float]] = field(default_factory=list)

    @property
    def violation_rate(self) -> float:
        """Fraction of matched pairs that miss their deadline (0 when
        nothing was matched)."""
        if self.total_pairs == 0:
            return 0.0
        return len(self.violations) / self.total_pairs

    @property
    def max_lateness(self) -> float:
        """Largest lateness among violators (0 when none)."""
        if not self.violations:
            return 0.0
        return max(lateness for _w, _t, lateness in self.violations)


def audit_outcome(instance: Instance, outcome: AssignmentOutcome) -> MovementAudit:
    """Replay every matched pair of ``outcome`` under movement semantics.

    Raises:
        SimulationError: if the outcome references unknown entities.
    """
    audit = MovementAudit(
        algorithm=outcome.algorithm,
        total_pairs=outcome.matching.size,
        feasible_pairs=0,
    )
    travel = instance.travel
    grid = instance.grid
    for worker_id, task_id in outcome.matching:
        try:
            worker = instance.worker(worker_id)
            task = instance.task(task_id)
        except Exception as exc:  # InvalidEntityError from the instance
            raise SimulationError(f"outcome references unknown entity: {exc}") from exc

        assignment_time = max(worker.start, task.start)
        decision = outcome.worker_decisions.get(worker_id)
        if decision is not None and decision.target_area is not None:
            target = grid.center_of(decision.target_area)
            position = travel.position_at(
                worker.location, target, depart=worker.start, now=assignment_time
            )
        elif task.start >= worker.start:
            # The worker idled at its own location until the task arrived.
            position = worker.location
        else:
            # The worker arrived after the task and departs immediately.
            position = worker.location

        arrival = assignment_time + travel.travel_time(position, task.location)
        lateness = arrival - task.deadline
        if lateness <= 1e-9:
            audit.feasible_pairs += 1
        else:
            audit.violations.append((worker_id, task_id, lateness))
    return audit
