"""Analysis tooling: audits and empirical competitive ratios.

* :mod:`repro.analysis.audit` — verifies assignments under explicit
  movement semantics (Section 5.1's "each pair matched based on the
  offline guide can be matched in reality" assumption, quantified).
* :mod:`repro.analysis.competitive` — empirical competitive-ratio
  estimation over resampled i.i.d. arrival orders (Definition 5).
* :mod:`repro.analysis.bounds` — Lemma 2's cut-based OPT upper bound,
  extracted from the guide's residual network.
"""

from repro.analysis.audit import MovementAudit, audit_outcome
from repro.analysis.bounds import GuideCutBound, empirical_opt_gap, guide_cut_bound
from repro.analysis.competitive import CompetitiveRatioEstimate, estimate_competitive_ratio

__all__ = [
    "MovementAudit",
    "audit_outcome",
    "GuideCutBound",
    "guide_cut_bound",
    "empirical_opt_gap",
    "CompetitiveRatioEstimate",
    "estimate_competitive_ratio",
]
