"""Lemma 2 in code: cut-based upper bounds on OPT from the guide.

Lemma 2 bounds the offline optimum by a cut built from the *guide's*
residual network: ``OPT ≤ |E*| + ε(m + n)`` with high probability, where
the ``ε(m + n)`` term absorbs the deviation of the realised arrivals from
their predicted counts.  This module makes both ingredients observable:

* :func:`guide_cut_bound` — extracts the reachability min-cut from a
  solved guide network and returns the deterministic part ``|E*|``
  together with the cut structure (which types sit on the source side —
  the "surplus worker types" — and which on the sink side);
* :func:`empirical_opt_gap` — measures ``OPT − |E*|`` on a concrete
  instance, the quantity Lemma 2 says is small when predictions are
  accurate.

These power the `ablation_cr` analysis and give users a cheap certified
upper bound on what *any* online algorithm could have achieved without
running OPT at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

import numpy as np

from repro.core.guide import OfflineGuide
from repro.core.opt import run_opt
from repro.errors import ConfigurationError
from repro.graph.mincut import residual_min_cut
from repro.graph.transportation import TransportationProblem
from repro.model.instance import Instance

__all__ = ["GuideCutBound", "guide_cut_bound", "empirical_opt_gap"]


@dataclass(frozen=True)
class GuideCutBound:
    """The Lemma 2 cut over the guide's transportation network.

    Attributes:
        guide_size: ``|E*|`` — the deterministic part of the bound.
        source_side_worker_types: worker types reachable from the source
            in the residual network (``Ŵ_S``: types with unused supply).
        sink_side_worker_types: the saturated ``Ŵ_T`` of the proof.
        source_side_task_types: ``R̂_S`` — task types absorbing flow.
        cut_capacity: capacity of the reachability cut (= ``|E*|``; the
            max-flow/min-cut identity the proof rests on, re-checked).
    """

    guide_size: int
    source_side_worker_types: Set[int]
    sink_side_worker_types: Set[int]
    source_side_task_types: Set[int]
    cut_capacity: int

    def bound(self, epsilon: float, m: int, n: int) -> float:
        """The full Lemma 2 bound ``|E*| + ε(m + n)``.

        Raises:
            ConfigurationError: for negative ``epsilon`` or populations.
        """
        if epsilon < 0 or m < 0 or n < 0:
            raise ConfigurationError("epsilon, m and n must be non-negative")
        return self.guide_size + epsilon * (m + n)


def guide_cut_bound(guide: OfflineGuide) -> GuideCutBound:
    """Re-solve the guide's transportation network and extract the
    canonical reachability min-cut (the Lemma 2 construction).

    The guide object stores only the lane flows, so the network is
    rebuilt from its capacities and lane set and re-maxed (cheap relative
    to the original enumeration; the flow value must reproduce
    ``guide.matched_pairs`` or the guide is corrupt).
    """
    supplies = guide.worker_capacity.tolist()
    demands = guide.task_capacity.tolist()
    problem = TransportationProblem(supplies, demands)
    for (wtype, ttype) in guide.lane_flow:
        problem.add_lane(wtype, ttype)
    # Lanes with zero flow in the stored guide may still exist in the
    # original network; omitting them can only *lower* the re-solved
    # max-flow below |E*| — so equality with matched_pairs certifies that
    # the stored flow was maximum on the stored lanes.
    solution = problem.solve(method="dinic")
    if solution.total != guide.matched_pairs:
        raise ConfigurationError(
            f"guide lane flows are not a maximum flow: re-solve found "
            f"{solution.total}, guide claims {guide.matched_pairs}"
        )
    cut = residual_min_cut(solution.network, solution.source, solution.sink)

    n_left = solution.n_left
    source_workers: Set[int] = set()
    sink_workers: Set[int] = set()
    source_tasks: Set[int] = set()
    for node in cut.source_side:
        if 1 <= node <= n_left:
            source_workers.add(node - 1)
        elif node > n_left and node < solution.sink:
            source_tasks.add(node - 1 - n_left)
    for type_index, supply in enumerate(supplies):
        if supply > 0 and type_index not in source_workers:
            sink_workers.add(type_index)
    return GuideCutBound(
        guide_size=guide.matched_pairs,
        source_side_worker_types=source_workers,
        sink_side_worker_types=sink_workers,
        source_side_task_types=source_tasks,
        cut_capacity=cut.capacity,
    )


def empirical_opt_gap(instance: Instance, guide: OfflineGuide, opt_method: str = "auto") -> float:
    """``(OPT − |E*|) / max(OPT, 1)`` — Lemma 2's deviation term, measured.

    Near zero when the prediction matches the realised arrivals; grows
    with prediction error.  Negative values mean the guide *over*-promised
    relative to what the actual arrivals allow (also a prediction error,
    in the other direction).
    """
    optimum = run_opt(instance, method=opt_method).size
    return (optimum - guide.matched_pairs) / max(optimum, 1)
