"""Empirical competitive-ratio estimation (Definition 5).

The i.i.d. competitive ratio minimises ``ALG / OPT`` over arrival orders
drawn from the spatiotemporal distributions.  We estimate it by Monte
Carlo: draw fresh instances from a generator (or resample the arrival
order of a fixed instance), run the algorithm and OPT on each draw, and
report the per-draw ratios.  Theorems 1–2 predict concentrations around
0.40 (POLAR) and 0.47 (POLAR-OP) *relative to the guide-feasible
optimum*; the ablation benchmark compares the estimates against those
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.guide import OfflineGuide
from repro.core.opt import run_opt
from repro.core.outcome import AssignmentOutcome
from repro.errors import ConfigurationError
from repro.model.instance import Instance

__all__ = ["CompetitiveRatioEstimate", "estimate_competitive_ratio"]


@dataclass
class CompetitiveRatioEstimate:
    """Monte-Carlo competitive-ratio summary.

    Attributes:
        algorithm: name of the estimated algorithm.
        ratios: per-draw ``ALG / OPT`` values (OPT-zero draws skipped).
        alg_sizes / opt_sizes: the raw per-draw matching sizes.
    """

    algorithm: str
    ratios: List[float] = field(default_factory=list)
    alg_sizes: List[int] = field(default_factory=list)
    opt_sizes: List[int] = field(default_factory=list)

    @property
    def n_draws(self) -> int:
        """Number of successful draws."""
        return len(self.ratios)

    @property
    def mean(self) -> float:
        """Mean ratio (0 when no draws)."""
        return sum(self.ratios) / len(self.ratios) if self.ratios else 0.0

    @property
    def minimum(self) -> float:
        """Worst observed ratio — the Monte-Carlo CR estimate."""
        return min(self.ratios) if self.ratios else 0.0


def estimate_competitive_ratio(
    algorithm: Callable[[Instance], AssignmentOutcome],
    instance_factory: Callable[[int], Instance],
    n_draws: int = 10,
    opt_method: str = "auto",
    name: Optional[str] = None,
) -> CompetitiveRatioEstimate:
    """Estimate ``min ALG/OPT`` over ``n_draws`` instance draws.

    Args:
        algorithm: maps an instance to an outcome (bind the guide and any
            options with a lambda/partial).
        instance_factory: maps a draw index to a fresh instance (e.g.
            ``lambda k: generator.generate(seed=k)``).
        n_draws: Monte-Carlo draws.
        opt_method: forwarded to :func:`repro.core.opt.run_opt`.
        name: label; defaults to the first outcome's algorithm name.

    Raises:
        ConfigurationError: for a non-positive draw count.
    """
    if n_draws < 1:
        raise ConfigurationError(f"n_draws must be >= 1, got {n_draws}")
    estimate = CompetitiveRatioEstimate(algorithm=name or "")
    for draw in range(n_draws):
        instance = instance_factory(draw)
        outcome = algorithm(instance)
        if not estimate.algorithm:
            estimate.algorithm = outcome.algorithm
        optimum = run_opt(instance, method=opt_method)
        if optimum.size == 0:
            continue
        estimate.alg_sizes.append(outcome.size)
        estimate.opt_sizes.append(optimum.size)
        estimate.ratios.append(outcome.size / optimum.size)
    return estimate
