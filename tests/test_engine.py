"""Tests for repro.core.engine — the incremental matcher protocol.

The load-bearing guarantee: driving a matcher arrival-by-arrival (the
serving path) produces **bit-identical** matchings, decisions and
counters to the legacy batch ``run_*`` adapters, for all five
algorithms, on seeded instances.
"""

import pytest

from repro.core.batch import run_batch
from repro.core.engine import (
    BatchMatcher,
    GreedyMatcher,
    PolarMatcher,
    PolarOpMatcher,
    STREAM_ALGORITHMS,
    TgoaMatcher,
    create_matcher,
)
from repro.core.greedy import run_simple_greedy
from repro.core.outcome import Decision
from repro.core.polar import run_polar
from repro.core.polar_op import run_polar_op
from repro.core.tgoa import run_tgoa
from repro.errors import ConfigurationError


def _max_task_duration(instance):
    return max((t.duration for t in instance.tasks), default=0.0)


def _assert_outcomes_identical(a, b):
    assert a.algorithm == b.algorithm
    assert a.matching.pairs() == b.matching.pairs()
    assert a.worker_decisions == b.worker_decisions
    assert a.task_decisions == b.task_decisions
    assert a.ignored_workers == b.ignored_workers
    assert a.ignored_tasks == b.ignored_tasks
    assert a.extras == b.extras


def _drive(matcher, events):
    matcher.begin()
    for event in events:
        matcher.observe(event)
    return matcher.finish()


class TestStepwiseParity:
    """observe()-per-arrival vs the legacy batch adapters."""

    def test_polar(self, small_instance, small_guide):
        legacy = run_polar(small_instance, small_guide, seed=3)
        stepwise = _drive(
            PolarMatcher(small_guide, seed=3), small_instance.arrival_stream()
        )
        _assert_outcomes_identical(stepwise, legacy)

    def test_polar_first_choice(self, small_instance, small_guide):
        legacy = run_polar(small_instance, small_guide, node_choice="first")
        stepwise = _drive(
            PolarMatcher(small_guide, node_choice="first"),
            small_instance.arrival_stream(),
        )
        _assert_outcomes_identical(stepwise, legacy)

    def test_polar_op(self, small_instance, small_guide):
        legacy = run_polar_op(small_instance, small_guide, seed=3)
        stepwise = _drive(
            PolarOpMatcher(small_guide, seed=3), small_instance.arrival_stream()
        )
        _assert_outcomes_identical(stepwise, legacy)

    def test_polar_op_random_choice(self, small_instance, small_guide):
        legacy = run_polar_op(
            small_instance, small_guide, node_choice="random", seed=5
        )
        stepwise = _drive(
            PolarOpMatcher(small_guide, node_choice="random", seed=5),
            small_instance.arrival_stream(),
        )
        _assert_outcomes_identical(stepwise, legacy)

    @pytest.mark.parametrize("indexed", [False, True])
    def test_greedy(self, small_instance, indexed):
        legacy = run_simple_greedy(small_instance, indexed=indexed)
        matcher = GreedyMatcher(
            small_instance.travel,
            grid=small_instance.grid,
            indexed=indexed,
            max_task_duration=_max_task_duration(small_instance),
        )
        stepwise = _drive(matcher, small_instance.arrival_stream())
        _assert_outcomes_identical(stepwise, legacy)

    def test_greedy_indexed_running_max_parity(self, small_instance):
        """The running-max radius cutoff (no look-ahead) matches the
        batch implementation's global-max cutoff."""
        legacy = run_simple_greedy(small_instance, indexed=True)
        matcher = GreedyMatcher(
            small_instance.travel, grid=small_instance.grid, indexed=True
        )
        stepwise = _drive(matcher, small_instance.arrival_stream())
        assert stepwise.matching.pairs() == legacy.matching.pairs()

    def test_gr(self, small_instance):
        legacy = run_batch(small_instance)
        matcher = BatchMatcher(
            small_instance.travel,
            small_instance.grid,
            small_instance.timeline.slot_minutes / 10.0,
        )
        stepwise = _drive(matcher, small_instance.arrival_stream())
        _assert_outcomes_identical(stepwise, legacy)

    @pytest.mark.parametrize("indexed", [False, True])
    def test_tgoa(self, small_instance, indexed):
        legacy = run_tgoa(small_instance, indexed=indexed)
        events = small_instance.arrival_stream()
        matcher = TgoaMatcher(
            small_instance.travel,
            grid=small_instance.grid,
            halfway=len(events) // 2,
            indexed=indexed,
            max_task_duration=_max_task_duration(small_instance),
        )
        stepwise = _drive(matcher, events)
        _assert_outcomes_identical(stepwise, legacy)

    def test_tgoa_running_max_parity(self, small_instance):
        """TGOA's indexed ring cutoff is safe without the duration hint."""
        legacy = run_tgoa(small_instance, indexed=True)
        events = small_instance.arrival_stream()
        matcher = TgoaMatcher(
            small_instance.travel,
            grid=small_instance.grid,
            halfway=len(events) // 2,
        )
        stepwise = _drive(matcher, events)
        assert stepwise.matching.pairs() == legacy.matching.pairs()


class TestLifecycle:
    def test_observe_before_begin_raises(self, small_instance, small_guide):
        matcher = PolarMatcher(small_guide)
        with pytest.raises(ConfigurationError):
            matcher.observe(small_instance.arrival_stream()[0])

    def test_finish_before_begin_raises(self, small_guide):
        with pytest.raises(ConfigurationError):
            PolarMatcher(small_guide).finish()

    def test_matcher_is_reusable(self, small_instance, small_guide):
        matcher = PolarMatcher(small_guide, seed=7)
        events = small_instance.arrival_stream()
        first = _drive(matcher, events)
        second = _drive(matcher, events)
        _assert_outcomes_identical(first, second)

    def test_finish_invalidates_run(self, small_instance, small_guide):
        matcher = PolarMatcher(small_guide)
        _drive(matcher, small_instance.arrival_stream())
        with pytest.raises(ConfigurationError):
            matcher.observe(small_instance.arrival_stream()[0])

    def test_observe_returns_immediate_decision(self, small_instance, small_guide):
        matcher = PolarMatcher(small_guide, node_choice="first")
        matcher.begin()
        decisions = [matcher.observe(e) for e in small_instance.arrival_stream()]
        assert all(isinstance(d, Decision) for d in decisions)
        outcome = matcher.finish()
        assert len(decisions) == len(outcome.worker_decisions) + len(
            outcome.task_decisions
        )

    def test_live_metrics_mid_stream(self, small_instance, small_guide):
        matcher = PolarMatcher(small_guide)
        matcher.begin()
        events = small_instance.arrival_stream()
        for event in events[: len(events) // 2]:
            matcher.observe(event)
        assert matcher.workers_seen + matcher.tasks_seen == len(events) // 2
        assert 0 <= matcher.matched <= len(events) // 2
        matcher.finish()

    def test_gr_finish_flushes_pending_windows(self, small_instance):
        """Matches committed only by finish()'s window drain still appear
        (a window long enough that the last windows never flush
        mid-stream)."""
        window = small_instance.timeline.slot_minutes
        matcher = BatchMatcher(
            small_instance.travel, small_instance.grid, window_minutes=window
        )
        matcher.begin()
        for event in small_instance.arrival_stream():
            matcher.observe(event)
        mid_stream_matches = matcher.matched
        outcome = matcher.finish()
        assert outcome.matching.size >= mid_stream_matches
        assert outcome.matching.size > 0
        legacy = run_batch(small_instance, window_minutes=window)
        assert outcome.matching.pairs() == legacy.matching.pairs()


class TestConfiguration:
    def test_polar_unknown_node_choice(self, small_guide):
        with pytest.raises(ConfigurationError):
            PolarMatcher(small_guide, node_choice="mystery")

    def test_indexed_greedy_needs_grid(self, small_instance):
        with pytest.raises(ConfigurationError):
            GreedyMatcher(small_instance.travel, indexed=True)

    def test_indexed_tgoa_needs_grid(self, small_instance):
        with pytest.raises(ConfigurationError):
            TgoaMatcher(small_instance.travel, indexed=True)

    def test_tgoa_negative_halfway(self, small_instance):
        with pytest.raises(ConfigurationError):
            TgoaMatcher(small_instance.travel, indexed=False, halfway=-1)

    def test_gr_non_positive_window(self, small_instance):
        with pytest.raises(ConfigurationError):
            BatchMatcher(small_instance.travel, small_instance.grid, 0.0)


class TestFactory:
    def test_factory_covers_all_stream_algorithms(
        self, small_instance, small_guide
    ):
        for algorithm in STREAM_ALGORITHMS:
            matcher = create_matcher(algorithm, small_instance, guide=small_guide)
            outcome = _drive(matcher, small_instance.arrival_stream())
            assert outcome.matching.size > 0

    def test_factory_matches_adapters(self, small_instance, small_guide):
        expectations = {
            "SimpleGreedy": run_simple_greedy(small_instance),
            "GR": run_batch(small_instance),
            "POLAR": run_polar(small_instance, small_guide),
            "POLAR-OP": run_polar_op(small_instance, small_guide),
            "TGOA": run_tgoa(small_instance),
        }
        for algorithm, legacy in expectations.items():
            matcher = create_matcher(algorithm, small_instance, guide=small_guide)
            stepwise = _drive(matcher, small_instance.arrival_stream())
            assert stepwise.matching.pairs() == legacy.matching.pairs()

    def test_factory_unknown_algorithm(self, small_instance):
        with pytest.raises(ConfigurationError):
            create_matcher("Magic", small_instance)

    def test_factory_polar_needs_guide(self, small_instance):
        with pytest.raises(ConfigurationError):
            create_matcher("POLAR", small_instance)
