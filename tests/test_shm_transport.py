"""Tests for the shared-memory worker transport (repro.serving.shmring).

Covers the record codec (pack/unpack roundtrips across all three event
kinds and both ack shapes, extreme coordinate/id/deadline values, the
escape conditions), the SPSC ring protocol (wraparound, full-ring
backpressure, torn-write detection via the sequence word, poisoned
records), the transport seam's validation, and the headline gates: an
shm-transport worker pool bit-identical to the pipe transport and the
in-process gateway on churn-free AND churned streams, including
kill-mid-stream recovery and fault injection on the shm path.
"""

import asyncio
import math

import pytest

from repro.core.engine import GreedyMatcher
from repro.core.outcome import Decision
from repro.errors import ConfigurationError, GatewayError
from repro.model.entities import Task, Worker
from repro.model.events import TASK, WORKER, Arrival, Departure, Move
from repro.serving import ipc, shmring
from repro.serving.faults import FaultPlan
from repro.serving.gateway import Gateway, render_prometheus
from repro.serving.workers import WorkerPool
from repro.spatial.geometry import Point
from repro.streams.churn import ChurnConfig

needs_shm = pytest.mark.skipif(
    not shmring.shm_available(),
    reason="no shared-memory segments on this host",
)

_FAST_RESTART = {"restart_backoff": 0.01, "restart_backoff_cap": 0.05}

I64_MAX = 2**63 - 1


def _slot() -> bytearray:
    return bytearray(shmring.SLOT_SIZE)


def _request_roundtrip(tag, seq, payload):
    buf = _slot()
    assert shmring.pack_request(buf, 0, tag, seq, payload) is True
    return shmring.unpack_request(buf, 0)


def _reply_roundtrip(tag, seq, payload):
    buf = _slot()
    assert shmring.pack_reply(buf, 0, tag, seq, payload) is True
    return shmring.unpack_reply(buf, 0)


class TestRequestCodec:
    @pytest.mark.parametrize("side, cls", [(WORKER, Worker), (TASK, Task)])
    def test_arrival_roundtrip(self, side, cls):
        entity = cls(id=7, location=Point(3.25, -4.5), start=10.0, duration=5.0)
        event = Arrival(time=10.0, seq=42, kind=side, entity=entity)
        tag, seq, decoded = _request_roundtrip(ipc.EVENT, 9, event)
        assert tag == ipc.EVENT
        assert seq == 9
        assert decoded == event
        assert type(decoded.entity) is cls

    def test_arrival_extreme_values(self):
        """Max-width ids, huge/negative-zero coordinates, and deadline
        edge values all survive the fixed-width slot bit-exactly."""
        entity = Worker(
            id=I64_MAX,
            location=Point(1e308, -0.0),
            start=1e15,
            duration=1e-12,
        )
        event = Arrival(time=1e15, seq=I64_MAX, kind=WORKER, entity=entity)
        _tag, _seq, decoded = _request_roundtrip(ipc.EVENT, 2**64 - 1, event)
        assert decoded.entity.id == I64_MAX
        assert decoded.entity.location.x == 1e308
        assert math.copysign(1.0, decoded.entity.location.y) == -1.0
        assert decoded.entity.duration == 1e-12
        assert decoded.entity.deadline == entity.deadline
        assert decoded.seq == I64_MAX

    @pytest.mark.parametrize("side", [WORKER, TASK])
    def test_departure_roundtrip(self, side):
        event = Departure(time=3.5, seq=11, kind=side, object_id=I64_MAX)
        tag, seq, decoded = _request_roundtrip(ipc.EVENT, 4, event)
        assert tag == ipc.EVENT
        assert seq == 4
        assert decoded == event

    @pytest.mark.parametrize("side", [WORKER, TASK])
    def test_move_roundtrip(self, side):
        event = Move(
            time=6.0, seq=13, kind=side, object_id=5,
            location=Point(-1e308, 2.5),
        )
        tag, seq, decoded = _request_roundtrip(ipc.EVENT, 5, event)
        assert tag == ipc.EVENT
        assert seq == 5
        assert decoded == event

    @pytest.mark.parametrize(
        "tag",
        [ipc.SNAPSHOT, ipc.FINISH, ipc.CHECKPOINT, ipc.PING, ipc.STOP],
    )
    def test_control_roundtrip(self, tag):
        assert _request_roundtrip(tag, 77, None) == (tag, 77, None)

    def test_tagged_arrival_escapes_without_touching_the_buffer(self):
        entity = Worker(
            id=1, location=Point(1.0, 1.0), start=0.0, duration=1.0,
            tags=("vip",),
        )
        event = Arrival(time=0.0, seq=0, kind=WORKER, entity=entity)
        buf = _slot()
        assert shmring.pack_request(buf, 0, ipc.EVENT, 0, event) is False
        assert bytes(buf) == bytes(shmring.SLOT_SIZE)

    def test_oversized_ids_escape(self):
        entity = Worker(
            id=2**63, location=Point(1.0, 1.0), start=0.0, duration=1.0
        )
        event = Arrival(time=0.0, seq=0, kind=WORKER, entity=entity)
        assert shmring.pack_request(_slot(), 0, ipc.EVENT, 0, event) is False
        big_seq = Departure(time=0.0, seq=2**63, kind=TASK, object_id=1)
        assert shmring.pack_request(_slot(), 0, ipc.EVENT, 0, big_seq) is False

    def test_bad_ipc_seq_escapes(self):
        event = Departure(time=0.0, seq=0, kind=WORKER, object_id=1)
        assert shmring.pack_request(_slot(), 0, ipc.EVENT, -1, event) is False
        assert shmring.pack_request(_slot(), 0, ipc.EVENT, 2**64, event) is False

    def test_unknown_payloads_escape(self):
        assert shmring.pack_request(_slot(), 0, ipc.EVENT, 0, object()) is False
        assert shmring.pack_request(_slot(), 0, ipc.SNAPSHOT, 0, "x") is False
        assert shmring.pack_request(_slot(), 0, "mystery", 0, None) is False

    def test_escape_record_decodes_to_esc(self):
        buf = _slot()
        shmring.pack_escape(buf, 0, 12, reply=False)
        assert shmring.unpack_request(buf, 0) == (shmring.ESC, 12, None)

    def test_poisoned_record_raises(self):
        buf = _slot()
        shmring.pack_poison(buf, 0, 3)
        with pytest.raises(GatewayError, match="corrupt shm request"):
            shmring.unpack_request(buf, 0)


class TestReplyCodec:
    @pytest.mark.parametrize(
        "decision",
        [
            Decision(Decision.ASSIGNED, target_area=3, partner_id=9),
            Decision(Decision.DISPATCHED, target_area=0, partner_id=I64_MAX),
            Decision(Decision.STAY),
            Decision(Decision.WAIT, target_area=17),
            Decision(Decision.IGNORED),
            Decision(Decision.DEPARTED),
        ],
    )
    def test_ack_roundtrip(self, decision):
        tag, seq, decoded = _reply_roundtrip(ipc.ACK, 21, decision)
        assert tag == ipc.ACK
        assert seq == 21
        assert decoded == decision
        assert decoded.partner_id == decision.partner_id
        assert decoded.target_area == decision.target_area

    def test_pong_roundtrip(self):
        assert _reply_roundtrip(ipc.PONG, 8, None) == (ipc.PONG, 8, None)

    def test_variable_replies_escape(self):
        assert shmring.pack_reply(_slot(), 0, ipc.NACK, 0, "boom") is False
        assert shmring.pack_reply(_slot(), 0, ipc.SNAP, 0, object()) is False
        assert shmring.pack_reply(_slot(), 0, ipc.CHKPT, 0, object()) is False
        assert shmring.pack_reply(_slot(), 0, ipc.DONE, 0, (None, None)) is False

    def test_exotic_decisions_escape(self):
        unknown = Decision("levitate")
        assert shmring.pack_reply(_slot(), 0, ipc.ACK, 0, unknown) is False
        huge = Decision(Decision.ASSIGNED, partner_id=2**63)
        assert shmring.pack_reply(_slot(), 0, ipc.ACK, 0, huge) is False

    def test_escape_record_decodes_to_esc(self):
        buf = _slot()
        shmring.pack_escape(buf, 0, 30, reply=True)
        assert shmring.unpack_reply(buf, 0) == (shmring.ESC, 30, None)

    def test_corrupt_kind_and_action_raise(self):
        buf = _slot()
        shmring.pack_poison(buf, 0, 1)
        with pytest.raises(GatewayError, match="corrupt shm reply"):
            shmring.unpack_reply(buf, 0)


def _bare_ring(capacity: int):
    buf = bytearray(shmring.HEADER_SIZE + capacity * shmring.SLOT_SIZE)
    ring = shmring.ShmRing(
        buf, shmring.HEADER_SIZE, capacity, produced_off=0, consumed_off=8
    )
    ring.init_slots()
    return ring, buf


class TestRingProtocol:
    def test_wraparound_preserves_order(self):
        """Ten records through a four-slot ring come out FIFO."""
        ring, buf = _bare_ring(4)
        produced = consumed = 0
        seen = []
        for _ in range(10):
            offset = ring.try_reserve(produced)
            assert offset is not None
            assert shmring.pack_request(buf, offset, ipc.PING, produced, None)
            ring.publish(produced)
            produced += 1
            offset = ring.try_consume(consumed)
            assert offset is not None
            seen.append(shmring.unpack_request(buf, offset)[1])
            ring.free(consumed)
            consumed += 1
        assert seen == list(range(10))
        assert ring.depth() == 0

    def test_full_ring_backpressure(self):
        ring, buf = _bare_ring(4)
        for pos in range(4):
            offset = ring.try_reserve(pos)
            assert offset is not None
            shmring.pack_request(buf, offset, ipc.PING, pos, None)
            ring.publish(pos)
        assert ring.try_reserve(4) is None  # full: producer must wait
        assert ring.depth() == 4
        offset = ring.try_consume(0)
        assert offset is not None
        ring.free(0)
        assert ring.try_reserve(4) is not None  # one slot came back

    def test_empty_ring_consumer_waits(self):
        ring, _buf = _bare_ring(4)
        assert ring.try_consume(0) is None

    def test_torn_write_detected_by_sequence_word(self):
        """A scribbled sequence word — neither free, occupied, ready
        nor pending — is corruption on both sides."""
        import struct

        ring, buf = _bare_ring(4)
        struct.pack_into("<Q", buf, ring.base, 12345)
        with pytest.raises(GatewayError, match="ring corruption"):
            ring.try_consume(0)
        with pytest.raises(GatewayError, match="ring corruption"):
            ring.try_reserve(0)

    def test_depth_tracks_published_minus_consumed(self):
        ring, buf = _bare_ring(8)
        for pos in range(3):
            offset = ring.try_reserve(pos)
            shmring.pack_request(buf, offset, ipc.PING, pos, None)
            ring.publish(pos)
        assert ring.depth() == 3
        ring.try_consume(0)
        ring.free(0)
        assert ring.depth() == 2


class TestRecvReadyDrain:
    """The reader loop's synchronous burst drain over the reply ring."""

    def _transport(self, capacity=8):
        import types

        segment = types.SimpleNamespace(
            buf=bytearray(shmring.segment_size(capacity))
        )
        shmring.request_ring(segment, capacity).init_slots()
        replies = shmring.reply_ring(segment, capacity)
        replies.init_slots()
        transport = shmring.ShmParentTransport(
            segment, capacity, reader=None, writer=None, process=None
        )
        return transport, replies, segment.buf

    def _publish_ack(self, replies, buf, pos):
        offset = replies.try_reserve(pos)
        assert offset is not None
        decision = Decision(Decision.ASSIGNED, partner_id=pos)
        assert shmring.pack_reply(buf, offset, ipc.ACK, pos, decision)
        replies.publish(pos)

    def test_drains_a_published_burst_without_awaiting(self):
        transport, replies, buf = self._transport()
        for pos in range(3):
            self._publish_ack(replies, buf, pos)
        messages = transport.recv_ready()
        assert [seq for _tag, seq, _payload in messages] == [0, 1, 2]
        assert all(tag == ipc.ACK for tag, _seq, _payload in messages)
        assert [payload.partner_id for _t, _s, payload in messages] == [0, 1, 2]
        assert transport.recv_ready() == []  # empty ring: nothing to pop
        assert replies.depth() == 0

    def test_stops_short_of_an_escape_slot(self):
        """ESC needs an awaited pipe read: the drain must leave it (and
        everything after it) for the next recv()."""
        transport, replies, buf = self._transport()
        self._publish_ack(replies, buf, 0)
        offset = replies.try_reserve(1)
        shmring.pack_escape(buf, offset, 1, reply=True)
        replies.publish(1)
        self._publish_ack(replies, buf, 2)
        messages = transport.recv_ready()
        assert [seq for _tag, seq, _payload in messages] == [0]
        assert replies.depth() == 2  # ESC slot and its successor untouched
        assert transport.recv_ready() == []  # still parked before the ESC

    def test_wraparound_burst_drains_in_order(self):
        transport, replies, buf = self._transport(capacity=4)
        produced = 0
        seen = []
        for _round in range(3):
            for _ in range(3):
                self._publish_ack(replies, buf, produced)
                produced += 1
            seen.extend(
                seq for _tag, seq, _payload in transport.recv_ready()
            )
        assert seen == list(range(9))

    def test_pipe_transport_has_no_sync_fast_path(self):
        from repro.serving.workers import _PipeParentTransport

        assert _PipeParentTransport(None, None).recv_ready() == ()


@needs_shm
class TestSegment:
    def test_segment_rings_are_disjoint(self):
        segment = shmring.create_segment(4)
        try:
            requests = shmring.request_ring(segment, 4)
            replies = shmring.reply_ring(segment, 4)
            offset = requests.try_reserve(0)
            shmring.pack_request(segment.buf, offset, ipc.PING, 1, None)
            requests.publish(0)
            assert requests.depth() == 1
            assert replies.depth() == 0
            assert replies.try_consume(0) is None
            requests = replies = None
        finally:
            segment.close()
            segment.unlink()

    def test_capacity_floor(self):
        with pytest.raises(GatewayError, match="capacity"):
            shmring.create_segment(1)


class TestTransportValidation:
    def test_pool_rejects_unknown_transport(self):
        with pytest.raises(GatewayError, match="transport"):
            WorkerPool(1, lambda shard: None, transport="carrier-pigeon")

    def test_pool_rejects_tiny_rings(self):
        with pytest.raises(GatewayError, match="ring_slots"):
            WorkerPool(1, lambda shard: None, transport="shm", ring_slots=1)

    def test_inline_gateway_rejects_shm(self, small_instance):
        with pytest.raises(GatewayError, match="worker processes"):
            Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                backend="inline",
                transport="shm",
            )

    def test_gateway_rejects_unknown_transport(self, small_instance):
        with pytest.raises(GatewayError, match="unknown transport"):
            Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                backend="process",
                transport="telepathy",
            )


def _greedy_factory(instance):
    return lambda shard: GreedyMatcher(instance.travel, indexed=False)


async def _drive(instance, events, backend, n_shards, **kwargs):
    gateway = Gateway(
        instance.grid,
        _greedy_factory(instance),
        n_shards=n_shards,
        backend=backend,
        **kwargs,
    )
    await gateway.start()
    for event in events:
        await gateway.submit(event)
    snapshot = await gateway.drain()
    outcomes = gateway.shard_outcomes()
    await gateway.close()
    return snapshot, outcomes


def _assert_bit_identical(outcomes_a, outcomes_b):
    assert len(outcomes_a) == len(outcomes_b)
    for a, b in zip(outcomes_a, outcomes_b):
        assert a.matching.pairs() == b.matching.pairs()
        assert a.worker_decisions == b.worker_decisions
        assert a.task_decisions == b.task_decisions
        assert a.ignored_workers == b.ignored_workers
        assert a.ignored_tasks == b.ignored_tasks
        assert a.departed_workers == b.departed_workers
        assert a.departed_tasks == b.departed_tasks
        assert a.moves == b.moves


@needs_shm
class TestShmParity:
    """The acceptance gate: shm ≡ pipe ≡ inline at equal shard counts."""

    def test_churn_free_parity_across_all_transports(self, small_instance):
        events = small_instance.arrival_stream()
        _s, inline = asyncio.run(_drive(small_instance, events, "inline", 3))
        _s, pipe = asyncio.run(
            _drive(small_instance, events, "process", 3, transport="pipe")
        )
        snap, shm = asyncio.run(
            _drive(small_instance, events, "process", 3, transport="shm")
        )
        _assert_bit_identical(inline, pipe)
        _assert_bit_identical(inline, shm)
        assert snap.transport == "shm"
        assert snap.malformed == 0

    def test_churned_parity_across_all_transports(self, small_instance):
        stream = small_instance.churn_stream(
            ChurnConfig(departure_rate=0.2, move_rate=0.1, seed=1)
        )
        _s, inline = asyncio.run(_drive(small_instance, stream, "inline", 3))
        _s, pipe = asyncio.run(
            _drive(small_instance, stream, "process", 3, transport="pipe")
        )
        snap, shm = asyncio.run(
            _drive(small_instance, stream, "process", 3, transport="shm")
        )
        _assert_bit_identical(inline, pipe)
        _assert_bit_identical(inline, shm)
        assert snap.moves > 0 or snap.departed > 0

    def test_tiny_ring_backpressure_parity(self, small_instance):
        """A 4-slot ring forces constant full-ring stalls; the stream
        still lands bit-identical (the backpressure path is lossless)."""
        events = small_instance.arrival_stream()
        _s, inline = asyncio.run(_drive(small_instance, events, "inline", 2))
        _s, shm = asyncio.run(
            _drive(
                small_instance, events, "process", 2, transport="shm",
                worker_config={"ring_slots": 4},
            )
        )
        _assert_bit_identical(inline, shm)


@needs_shm
class TestShmRecovery:
    """PR 6's recovery machinery must be transport-blind."""

    def test_kill_mid_stream_bit_identical_on_shm(self, small_instance):
        events = small_instance.arrival_stream()
        _s, ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance, events, "process", 3, transport="shm",
                fault_plan=FaultPlan.parse("kill:shard=1,at=25"),
                worker_config=dict(_FAST_RESTART, checkpoint_every=16),
            )
        )
        _assert_bit_identical(ref, out)
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 1
        assert snap.transport == "shm"

    def test_kill_mid_churned_stream_bit_identical_on_shm(self, small_instance):
        stream = small_instance.churn_stream(
            ChurnConfig(departure_rate=0.2, move_rate=0.1, seed=1)
        )
        _s, ref = asyncio.run(_drive(small_instance, stream, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance, stream, "process", 3, transport="shm",
                fault_plan=FaultPlan.parse("kill:shard=1,at=20"),
                worker_config=dict(_FAST_RESTART, checkpoint_every=16),
            )
        )
        _assert_bit_identical(ref, out)
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 1

    @pytest.mark.parametrize("action", ["torn", "corrupt", "drop"])
    def test_shm_stream_corruption_recovers(self, small_instance, action):
        """Poisoned slots (the shm shape of torn/corrupt) and dropped
        events funnel into the same supervised recovery as on pipes."""
        events = small_instance.arrival_stream()
        _s, ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance, events, "process", 3, transport="shm",
                fault_plan=FaultPlan.parse(f"{action}:shard=1,at=10"),
                worker_config=dict(_FAST_RESTART, checkpoint_every=16),
            )
        )
        _assert_bit_identical(ref, out)
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 1


@needs_shm
class TestShmObservability:
    def test_snapshot_and_prometheus_surface_the_transport(
        self, small_instance
    ):
        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                backend="process",
                transport="shm",
            )
            await gateway.start()
            for event in small_instance.arrival_stream()[:40]:
                await gateway.submit(event)
            snapshot = await gateway.snapshot_refreshed()
            await gateway.drain()
            await gateway.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot.transport == "shm"
        payload = snapshot.as_dict()
        assert payload["transport"] == "shm"
        for row in payload["shards"]:
            assert row["ring_request_depth"] >= 0
            assert row["ring_reply_depth"] >= 0
        text = render_prometheus(snapshot)
        assert 'ftoa_gateway_transport{transport="shm"} 1' in text
        assert 'ftoa_shard_ring_depth{shard="0",ring="request"}' in text
        assert 'ftoa_shard_ring_depth{shard="1",ring="reply"}' in text

    def test_pipe_snapshot_has_no_ring_rows(self, small_instance):
        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                backend="process",
                transport="pipe",
            )
            await gateway.start()
            snapshot = gateway.snapshot()
            await gateway.drain()
            await gateway.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot.transport == "pipe"
        for row in snapshot.as_dict()["shards"]:
            assert "ring_request_depth" not in row
        assert 'ftoa_gateway_transport{transport="pipe"} 1' in (
            render_prometheus(snapshot)
        )


class TestServeCliTransport:
    def test_parser_accepts_transport(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "x.jsonl", "--workers", "2", "--transport", "shm"]
        )
        assert args.transport == "shm"

    def test_transport_defaults_to_pipe(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "x.jsonl"])
        assert args.transport == "pipe"

    def test_shm_without_workers_is_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        stream = tmp_path / "events.jsonl"
        code = main(
            ["dump", "--workers", "20", "--tasks", "20", "--out", str(stream)]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            ["serve", str(stream), "--transport", "shm", "--port", "0",
             "--metrics-port", "0"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err
