"""Tests for repro.model.matching."""

import pytest

from repro.errors import MatchingError
from repro.model.entities import Task, Worker
from repro.model.matching import Matching
from repro.spatial.geometry import Point
from repro.spatial.travel import TravelModel


class TestAssign:
    def test_basic(self):
        matching = Matching()
        matching.assign(1, 2)
        assert matching.size == 1
        assert matching.task_of(1) == 2
        assert matching.worker_of(2) == 1
        assert (1, 2) in matching

    def test_reassigning_worker_raises(self):
        matching = Matching()
        matching.assign(1, 2)
        with pytest.raises(MatchingError):
            matching.assign(1, 3)

    def test_reassigning_task_raises(self):
        matching = Matching()
        matching.assign(1, 2)
        with pytest.raises(MatchingError):
            matching.assign(4, 2)

    def test_iteration_order(self):
        matching = Matching()
        matching.assign(5, 6)
        matching.assign(1, 2)
        assert list(matching) == [(5, 6), (1, 2)]
        assert matching.pairs() == [(5, 6), (1, 2)]
        assert len(matching) == 2

    def test_lookups_absent(self):
        matching = Matching()
        assert matching.task_of(9) is None
        assert matching.worker_of(9) is None
        assert not matching.worker_is_matched(9)
        assert not matching.task_is_matched(9)


class TestValidation:
    def _setup(self):
        travel = TravelModel(1.0)
        workers = {0: Worker(id=0, location=Point(0, 0), start=0.0, duration=10.0)}
        tasks = {
            0: Task(id=0, location=Point(1, 0), start=0.0, duration=5.0),
            1: Task(id=1, location=Point(100, 0), start=0.0, duration=5.0),
        }
        return workers, tasks, travel

    def test_feasible_pair_passes(self):
        workers, tasks, travel = self._setup()
        matching = Matching()
        matching.assign(0, 0)
        assert matching.validate_feasibility(workers, tasks, travel) == []

    def test_infeasible_pair_reported(self):
        workers, tasks, travel = self._setup()
        matching = Matching()
        matching.assign(0, 1)
        assert matching.validate_feasibility(workers, tasks, travel) == [(0, 1)]

    def test_unknown_entity_raises(self):
        workers, tasks, travel = self._setup()
        matching = Matching()
        matching.assign(7, 0)
        with pytest.raises(MatchingError):
            matching.validate_feasibility(workers, tasks, travel)
