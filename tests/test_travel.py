"""Tests for repro.spatial.travel."""

import pytest

from repro.errors import ConfigurationError
from repro.spatial.geometry import Point
from repro.spatial.travel import TravelModel


class TestConstruction:
    def test_invalid_velocity(self):
        with pytest.raises(ConfigurationError):
            TravelModel(0.0)
        with pytest.raises(ConfigurationError):
            TravelModel(-1.0)

    def test_cells_per_slot(self):
        # 5 cells per 15-minute slot = 1/3 cell per minute.
        model = TravelModel.cells_per_slot(5, 15.0)
        assert model.velocity == pytest.approx(1 / 3)

    def test_cells_per_slot_with_cell_size(self):
        model = TravelModel.cells_per_slot(5, 15.0, cell_size=2.0)
        assert model.velocity == pytest.approx(2 / 3)

    def test_cells_per_slot_invalid(self):
        with pytest.raises(ConfigurationError):
            TravelModel.cells_per_slot(0, 15)
        with pytest.raises(ConfigurationError):
            TravelModel.cells_per_slot(5, 0)


class TestTravelTimes:
    def test_travel_time(self):
        model = TravelModel(2.0)
        assert model.travel_time(Point(0, 0), Point(6, 8)) == pytest.approx(5.0)

    def test_travel_time_for_distance(self):
        assert TravelModel(2.0).travel_time_for_distance(10) == 5.0

    def test_negative_distance_raises(self):
        with pytest.raises(ConfigurationError):
            TravelModel(1.0).travel_time_for_distance(-1)

    def test_reachable_distance(self):
        model = TravelModel(3.0)
        assert model.reachable_distance(2.0) == 6.0
        assert model.reachable_distance(0.0) == 0.0
        assert model.reachable_distance(-5.0) == 0.0


class TestPositionAt:
    def test_before_departure(self):
        model = TravelModel(1.0)
        origin, destination = Point(0, 0), Point(10, 0)
        assert model.position_at(origin, destination, depart=5.0, now=3.0) == origin

    def test_mid_flight(self):
        model = TravelModel(1.0)
        position = model.position_at(Point(0, 0), Point(10, 0), depart=0.0, now=4.0)
        assert position == Point(4.0, 0.0)

    def test_after_arrival_stays_at_destination(self):
        model = TravelModel(1.0)
        position = model.position_at(Point(0, 0), Point(10, 0), depart=0.0, now=99.0)
        assert position == Point(10.0, 0.0)
