"""Integration tests for the figure/table/ablation drivers (tiny scales)."""

import pytest

from repro.experiments.ablations import (
    run_batch_window,
    run_guide_solvers,
    run_movement_audit,
    run_prediction_noise,
)
from repro.experiments.figures import run_fig4_deadline, run_fig5_city
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.results import SweepResult, TableResult
from repro.experiments.tables import run_table5
from repro.errors import ExperimentError

TINY = 0.01
FAST = ("SimpleGreedy", "POLAR", "POLAR-OP")


class TestFigureDrivers:
    def test_fig4_deadline_shape(self):
        result = run_fig4_deadline(scale=TINY, measure_memory=False, algorithms=FAST)
        assert isinstance(result, SweepResult)
        assert result.x_values == [1.0, 1.5, 2.0, 2.5, 3.0]
        assert set(result.cells) == set(FAST)
        assert all(len(cells) == 5 for cells in result.cells.values())
        assert result.notes["scale"] == f"{TINY:g}"

    def test_fig5_city_runs_full_two_step_pipeline(self):
        result = run_fig5_city(
            "beijing",
            scale=0.01,
            measure_memory=False,
            algorithms=("POLAR-OP",),
            history_days=10,
        )
        assert result.experiment_id == "fig5_beijing"
        assert result.notes["predictor"] == "HP-MSI"
        assert len(result.x_values) == 5

    def test_unknown_city(self):
        with pytest.raises(ExperimentError):
            run_fig5_city("gotham", scale=TINY)


class TestTable5:
    def test_structure(self):
        result = run_table5(
            scale=0.05,
            history_days=10,
            n_eval_days=1,
            predictors=("HA", "PAQ"),
            cities=("hangzhou",),
        )
        assert isinstance(result, TableResult)
        assert set(result.row_labels) == {"HA", "PAQ"}
        assert "ER task hangzhou" in result.column_labels
        assert "RMSLE worker hangzhou" in result.column_labels
        for row in result.row_labels:
            for column in result.column_labels:
                value = result.get(row, column)
                assert value is not None and value >= 0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_table5(history_days=2)
        with pytest.raises(ExperimentError):
            run_table5(n_eval_days=0)
        with pytest.raises(ExperimentError):
            run_table5(history_days=10, cities=("gotham",))


class TestAblations:
    def test_prediction_noise_monotone_guide_quality(self):
        result = run_prediction_noise(scale=0.02, noise_levels=(0.0, 2.0))
        clean = result.get("noise=0", "POLAR")
        assert clean is not None
        assert result.get("noise=2", "guide size") is not None

    def test_guide_solvers_agree(self):
        result = run_guide_solvers(scale=0.01)
        sizes = {
            result.get(method, "guide size")
            for method in ("edmonds_karp", "dinic", "mincost", "scipy")
        }
        assert len(sizes) == 1
        assert result.get("mincost", "travel cost (min)") is not None

    def test_batch_window(self):
        result = run_batch_window(scale=0.01, windows=(1.0, 10.0))
        assert result.get("1 min", "size") is not None
        assert result.get("10 min", "batches") is not None

    def test_movement_audit(self):
        result = run_movement_audit(scale=0.02)
        # Wait-in-place algorithms are physically feasible by construction.
        assert result.get("SimpleGreedy", "violation rate") == 0.0
        assert result.get("GR", "violation rate") == 0.0
        assert result.get("POLAR-OP", "matched") is not None


class TestRegistry:
    def test_contains_every_design_md_experiment(self):
        expected = {
            "fig4_workers", "fig4_tasks", "fig4_deadline", "fig4_grids",
            "fig5_slots", "fig5_scalability", "fig5_beijing", "fig5_hangzhou",
            "fig6_mu", "fig6_sigma", "fig6_mean", "fig6_cov",
            "table5_prediction", "ablation_cr", "ablation_prediction_noise",
            "ablation_guide_solvers",
        }
        assert expected.issubset(set(EXPERIMENTS))

    def test_get_experiment(self):
        spec = get_experiment("fig4_workers")
        assert spec.paper_ref.startswith("Figure 4")
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_list_experiments_order(self):
        specs = list_experiments()
        assert specs[0].experiment_id == "fig4_workers"
        assert len(specs) == len(EXPERIMENTS)

    def test_every_spec_has_description_and_ref(self):
        for spec in list_experiments():
            assert spec.description
            assert spec.paper_ref
            assert spec.default_scale > 0
