"""Tests for repro.streams.oracle."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.errors import PredictionError
from repro.streams.oracle import exact_oracle, perturbed_oracle, rounded_counts
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


class TestRoundedCounts:
    def test_preserves_total(self):
        values = np.array([[0.4, 0.4], [0.4, 0.8]])
        rounded = rounded_counts(values)
        assert rounded.sum() == 2  # round(2.0)
        assert rounded.shape == values.shape

    def test_integer_input_unchanged(self):
        values = np.array([1.0, 2.0, 3.0])
        assert (rounded_counts(values) == [1, 2, 3]).all()

    def test_largest_remainders_win(self):
        rounded = rounded_counts(np.array([0.9, 0.1, 1.0]))
        assert rounded.tolist() == [1, 0, 1]

    def test_rejects_negative(self):
        with pytest.raises(PredictionError):
            rounded_counts(np.array([-0.1, 1.0]))

    def test_rejects_non_finite(self):
        with pytest.raises(PredictionError):
            rounded_counts(np.array([np.nan]))

    @given(
        npst.arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(0, 50, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_total_always_preserved(self, values):
        rounded = rounded_counts(values)
        assert rounded.sum() == int(round(float(values.sum())))
        assert (rounded >= 0).all()
        # Each cell moves by less than 1 from its floor/ceil neighbourhood.
        assert (np.abs(rounded - values) < 1.0 + 1e-9).all()


class TestOracles:
    def test_exact_oracle_totals(self):
        generator = SyntheticGenerator(
            SyntheticConfig(n_workers=50, n_tasks=70, grid_side=5, n_slots=4)
        )
        a, b = exact_oracle(generator)
        assert a.sum() == 50 and b.sum() == 70

    def test_zero_noise_is_exact(self):
        expected = np.array([[1.2, 3.4], [0.0, 5.4]])
        rng = random.Random(0)
        assert (perturbed_oracle(expected, 0.0, rng) == rounded_counts(expected)).all()

    def test_noise_changes_counts(self):
        expected = np.full((4, 4), 10.0)
        noisy = perturbed_oracle(expected, 0.5, random.Random(3))
        assert noisy.shape == expected.shape
        assert (noisy >= 0).all()
        assert not (noisy == rounded_counts(expected)).all()

    def test_negative_noise_rejected(self):
        with pytest.raises(PredictionError):
            perturbed_oracle(np.ones((2, 2)), -0.1, random.Random(0))
