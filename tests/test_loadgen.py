"""Tests for repro.serving.loadgen — the async load generator."""

import asyncio

import pytest

from repro.core.engine import GreedyMatcher
from repro.errors import GatewayError
from repro.serving.gateway import Gateway
from repro.serving.loadgen import LoadgenReport, _percentile, run_loadgen


def _factory(instance):
    return lambda shard: GreedyMatcher(instance.travel, indexed=False)


def _run_against_gateway(instance, events, **loadgen_kwargs):
    async def scenario():
        gateway = Gateway(instance.grid, _factory(instance), n_shards=2)
        await gateway.start(port=0)
        report = await run_loadgen(
            events, port=gateway.tcp_port, **loadgen_kwargs
        )
        snapshot = await gateway.close()
        return report, snapshot

    return asyncio.run(scenario())


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert _percentile([7.0], 0.5) == 7.0
        assert _percentile([7.0], 0.99) == 7.0

    def test_orders(self):
        values = sorted(float(v) for v in range(1, 101))
        assert _percentile(values, 0.50) == 50.0
        assert _percentile(values, 0.99) == 99.0
        assert _percentile(values, 1.0) == 100.0


class TestRunLoadgen:
    def test_unthrottled_replay(self, small_instance):
        events = small_instance.arrival_stream()[:200]
        report, snapshot = _run_against_gateway(small_instance, events)
        assert report.sent == 200
        assert report.acked == 200
        assert report.errors == 0
        assert report.arrivals_per_sec > 0
        assert set(report.latency_ms) == {"p50", "p90", "p99", "mean", "max"}
        assert report.latency_ms["p50"] <= report.latency_ms["p99"]
        assert snapshot.arrivals == 200

    def test_rate_pacing_slows_the_stream(self, small_instance):
        events = small_instance.arrival_stream()[:50]
        report, _snapshot = _run_against_gateway(
            small_instance, events, rate=500.0
        )
        # 50 sends at 500/s are paced over >= ~0.098s.
        assert report.seconds >= 0.09
        assert report.target_rate == 500.0

    def test_drain_returns_final_snapshot(self, small_instance):
        events = small_instance.arrival_stream()[:100]
        report, _snapshot = _run_against_gateway(
            small_instance, events, drain=True
        )
        assert report.snapshot is not None
        assert report.snapshot["state"] == "closed"
        assert report.snapshot["arrivals"] == 100

    def test_report_as_dict_and_summary(self, small_instance):
        events = small_instance.arrival_stream()[:20]
        report, _snapshot = _run_against_gateway(small_instance, events)
        payload = report.as_dict()
        assert payload["sent"] == 20
        assert isinstance(report, LoadgenReport)
        assert "arrivals/s" in report.summary()

    def test_requires_exactly_one_endpoint(self, small_instance):
        with pytest.raises(GatewayError):
            asyncio.run(run_loadgen([]))
        with pytest.raises(GatewayError):
            asyncio.run(run_loadgen([], port=1, unix_path="/tmp/x.sock"))

    def test_unix_socket_roundtrip(self, small_instance, tmp_path):
        socket_path = str(tmp_path / "lg.sock")
        events = small_instance.arrival_stream()[:30]

        async def scenario():
            gateway = Gateway(small_instance.grid, _factory(small_instance))
            await gateway.start(port=None, unix_path=socket_path)
            report = await run_loadgen(events, unix_path=socket_path, drain=True)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert report.acked == 30
        assert report.snapshot["arrivals"] == 30
