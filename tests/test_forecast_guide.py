"""Tests for repro.serving.forecast — forecast-driven guides."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.model.events import Arrival
from repro.serving.forecast import forecast_guide, history_from_stream
from repro.serving.replay import build_self_guide


def _shifted(events, offset, horizon):
    """The same arrivals replayed ``offset`` horizons later."""
    shifted = []
    for event in events:
        entity = type(event.entity)(
            id=event.entity.id,
            location=event.entity.location,
            start=event.entity.start + offset * horizon,
            duration=event.entity.duration,
        )
        shifted.append(
            Arrival(
                time=entity.start, seq=event.seq, kind=event.kind, entity=entity
            )
        )
    return shifted


class TestHistoryFromStream:
    def test_single_day_counts(self, small_instance):
        events = small_instance.arrival_stream()
        workers, tasks, worker_duration, task_duration = history_from_stream(
            events, small_instance.grid, small_instance.timeline
        )
        assert workers.n_days == 1
        assert tasks.n_days == 1
        assert workers.counts.sum() == small_instance.n_workers
        assert tasks.counts.sum() == small_instance.n_tasks
        assert worker_duration > 0 and task_duration > 0
        expected = np.mean([w.duration for w in small_instance.workers])
        assert worker_duration == pytest.approx(expected)

    def test_multi_day_folding(self, small_instance):
        timeline = small_instance.timeline
        events = small_instance.arrival_stream()
        three_days = (
            list(events)
            + _shifted(events, 1, timeline.duration)
            + _shifted(events, 2, timeline.duration)
        )
        workers, tasks, _wd, _td = history_from_stream(
            three_days, small_instance.grid, timeline
        )
        assert workers.n_days == 3
        # Each folded day holds the same counts as the original day.
        assert (workers.counts[0] == workers.counts[1]).all()
        assert (workers.counts[0] == workers.counts[2]).all()
        assert list(workers.day_of_week) == [0, 1, 2]
        assert tasks.n_days == 3

    def test_horizon_end_arrival_stays_in_the_closing_day(self, small_instance):
        """Timeline bins the exact horizon end into the last slot; the
        history bucketing must agree, or one closing event would mint a
        phantom extra day and skew every per-day average."""
        from repro.model.entities import Worker
        from repro.spatial.geometry import Point

        timeline = small_instance.timeline
        boundary = Worker(
            id=9_999,
            location=Point(1.0, 1.0),
            start=timeline.t0 + timeline.duration,
            duration=60.0,
        )
        events = list(small_instance.arrival_stream()) + [
            Arrival(time=boundary.start, seq=10_000, kind="worker",
                    entity=boundary)
        ]
        workers, _tasks, _wd, _td = history_from_stream(
            events, small_instance.grid, timeline
        )
        assert workers.n_days == 1
        assert workers.counts.sum() == small_instance.n_workers + 1
        slot = timeline.n_slots - 1
        area = small_instance.grid.area_of(boundary.location)
        assert workers.counts[0, slot, area] >= 1

    def test_empty_stream_rejected(self, small_instance):
        with pytest.raises(SimulationError):
            history_from_stream(
                [], small_instance.grid, small_instance.timeline
            )

    def test_pre_horizon_times_rejected(self, small_instance):
        """An arrival before the timeline's t0 cannot be bucketed."""
        from repro.spatial.timeslots import Timeline

        late_timeline = Timeline(n_slots=4, slot_minutes=60.0, t0=1e6)
        events = small_instance.arrival_stream()[:1]
        with pytest.raises(SimulationError):
            history_from_stream(events, small_instance.grid, late_timeline)


class TestForecastGuide:
    def test_ha_on_own_day_matches_self_guide(self, small_instance):
        """HA over a one-day history predicts that day's exact counts, so
        the forecast guide coincides with the perfect-hindsight
        self-guide — the upper bound a real forecast approaches."""
        events = small_instance.arrival_stream()
        from_forecast = forecast_guide(
            events,
            small_instance.grid,
            small_instance.timeline,
            small_instance.travel,
            predictor="HA",
        )
        self_guide = build_self_guide(
            events,
            small_instance.grid,
            small_instance.timeline,
            small_instance.travel,
        )
        assert from_forecast.matched_pairs == self_guide.matched_pairs
        assert (
            from_forecast.worker_capacity == self_guide.worker_capacity
        ).all()
        assert (from_forecast.task_capacity == self_guide.task_capacity).all()

    def test_hp_msi_needs_two_days(self, small_instance):
        with pytest.raises(SimulationError):
            forecast_guide(
                small_instance.arrival_stream(),
                small_instance.grid,
                small_instance.timeline,
                small_instance.travel,
                predictor="HP-MSI",
            )

    def test_hp_msi_fits_short_multi_day_history(self, small_instance):
        timeline = small_instance.timeline
        events = small_instance.arrival_stream()
        history = (
            list(events)
            + _shifted(events, 1, timeline.duration)
            + _shifted(events, 2, timeline.duration)
        )
        guide = forecast_guide(
            history,
            small_instance.grid,
            timeline,
            small_instance.travel,
            predictor="HP-MSI",
        )
        assert guide.matched_pairs > 0

    def test_unknown_predictor_rejected(self, small_instance):
        with pytest.raises(ValueError):
            forecast_guide(
                small_instance.arrival_stream(),
                small_instance.grid,
                small_instance.timeline,
                small_instance.travel,
                predictor="nope",
            )

    def test_single_sided_history_rejected(self, small_instance):
        workers_only = [e for e in small_instance.arrival_stream() if e.is_worker]
        with pytest.raises(SimulationError):
            forecast_guide(
                workers_only,
                small_instance.grid,
                small_instance.timeline,
                small_instance.travel,
            )
