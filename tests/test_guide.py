"""Tests for repro.core.guide (Algorithm 1)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.guide import OfflineGuide, build_guide, enumerate_lanes, expanded_guide_size
from repro.errors import ConfigurationError
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel


def _small_setup():
    grid = Grid.square(3, cell_size=2.0)
    timeline = Timeline(3, 10.0)
    travel = TravelModel(1.0)
    return grid, timeline, travel


def _random_counts(rng, n_slots, n_areas, total):
    counts = np.zeros((n_slots, n_areas), dtype=np.int64)
    for _ in range(total):
        counts[rng.randrange(n_slots), rng.randrange(n_areas)] += 1
    return counts


class TestExample1Guide:
    def test_matches_figure_2(self, example1):
        instance, a, b, module = example1
        guide = build_guide(
            a, b, instance.grid, instance.timeline, instance.travel,
            worker_duration=module.WORKER_DEADLINE,
            task_duration=module.TASK_DEADLINE,
        )
        assert guide.matched_pairs == 5

    def test_expanded_agrees(self, example1):
        instance, a, b, module = example1
        assert (
            expanded_guide_size(
                a, b, instance.grid, instance.timeline, instance.travel,
                module.WORKER_DEADLINE, module.TASK_DEADLINE,
            )
            == 5
        )


class TestLaneEnumeration:
    def test_same_type_always_feasible(self):
        grid, timeline, travel = _small_setup()
        a = np.zeros((3, 9), dtype=np.int64)
        b = np.zeros((3, 9), dtype=np.int64)
        a[1, 4] = 2
        b[1, 4] = 3
        lanes = enumerate_lanes(a, b, grid, timeline, travel, 20.0, 5.0)
        assert len(lanes) == 1
        w, t, d = next(iter(lanes))
        assert w == t == 1 * 9 + 4
        assert d == 0.0

    def test_condition1_filters_late_tasks(self):
        grid, timeline, travel = _small_setup()
        a = np.zeros((3, 9), dtype=np.int64)
        b = np.zeros((3, 9), dtype=np.int64)
        a[0, 0] = 1
        b[2, 0] = 1  # task slot mid = 25; worker deadline = 5 + Dw
        lanes = enumerate_lanes(a, b, grid, timeline, travel, 10.0, 100.0)
        assert len(lanes) == 0  # 25 >= 5 + 10
        lanes = enumerate_lanes(a, b, grid, timeline, travel, 30.0, 100.0)
        assert len(lanes) == 1

    def test_condition2_filters_far_areas(self):
        grid, timeline, travel = _small_setup()
        a = np.zeros((3, 9), dtype=np.int64)
        b = np.zeros((3, 9), dtype=np.int64)
        a[0, 0] = 1  # centre (1, 1)
        b[0, 8] = 1  # centre (5, 5): distance = 4*sqrt(2) ~ 5.66
        lanes = enumerate_lanes(a, b, grid, timeline, travel, 30.0, 5.0)
        assert len(lanes) == 0
        lanes = enumerate_lanes(a, b, grid, timeline, travel, 30.0, 6.0)
        assert len(lanes) == 1

    def test_empty_counts(self):
        grid, timeline, travel = _small_setup()
        zeros = np.zeros((3, 9), dtype=np.int64)
        lanes = enumerate_lanes(zeros, zeros, grid, timeline, travel, 10.0, 10.0)
        assert len(lanes) == 0


class TestBuildGuide:
    def test_methods_agree(self):
        grid, timeline, travel = _small_setup()
        rng = random.Random(3)
        a = _random_counts(rng, 3, 9, 12)
        b = _random_counts(rng, 3, 9, 12)
        sizes = {
            method: build_guide(
                a, b, grid, timeline, travel, 20.0, 8.0, method=method
            ).matched_pairs
            for method in ("dinic", "edmonds_karp", "mincost", "scipy", "auto")
        }
        assert len(set(sizes.values())) == 1

    def test_compressed_equals_expanded(self):
        grid, timeline, travel = _small_setup()
        for seed in range(8):
            rng = random.Random(seed)
            a = _random_counts(rng, 3, 9, rng.randint(0, 15))
            b = _random_counts(rng, 3, 9, rng.randint(0, 15))
            compressed = build_guide(a, b, grid, timeline, travel, 20.0, 8.0)
            expanded = expanded_guide_size(a, b, grid, timeline, travel, 20.0, 8.0)
            assert compressed.matched_pairs == expanded, f"seed {seed}"

    def test_mincost_minimises_travel(self):
        grid, timeline, travel = _small_setup()
        a = np.zeros((3, 9), dtype=np.int64)
        b = np.zeros((3, 9), dtype=np.int64)
        a[0, 0] = 1
        b[0, 1] = 1  # near: distance 2
        b[0, 2] = 1  # far: distance 4
        guide = build_guide(a, b, grid, timeline, travel, 30.0, 10.0, method="mincost")
        assert guide.matched_pairs == 1
        assert guide.total_cost == pytest.approx(2.0)
        assert (0, 1) in guide.lane_flow

    def test_validation(self):
        grid, timeline, travel = _small_setup()
        zeros = np.zeros((3, 9), dtype=np.int64)
        with pytest.raises(ConfigurationError):
            build_guide(zeros, zeros, grid, timeline, travel, 0.0, 5.0)
        with pytest.raises(ConfigurationError):
            build_guide(zeros[:2], zeros, grid, timeline, travel, 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            build_guide(-zeros - 1, zeros, grid, timeline, travel, 5.0, 5.0)
        with pytest.raises(ConfigurationError):
            build_guide(zeros, zeros, grid, timeline, travel, 5.0, 5.0, method="magic")


class TestDecomposition:
    def _guide(self):
        grid, timeline, travel = _small_setup()
        rng = random.Random(11)
        a = _random_counts(rng, 3, 9, 20)
        b = _random_counts(rng, 3, 9, 20)
        return build_guide(a, b, grid, timeline, travel, 20.0, 8.0)

    def test_partners_are_mutual(self):
        guide = self._guide()
        for type_index in range(guide.n_types):
            for offset in range(guide.worker_nodes(type_index)):
                partner = guide.worker_partner(type_index, offset)
                if partner is not None:
                    back = guide.task_partner(*partner)
                    assert back == (type_index, offset)

    def test_matched_node_counts_sum_to_guide_size(self):
        guide = self._guide()
        total_w = sum(guide.matched_worker_nodes(t) for t in range(guide.n_types))
        total_t = sum(guide.matched_task_nodes(t) for t in range(guide.n_types))
        assert total_w == total_t == guide.matched_pairs

    def test_type_index_roundtrip(self):
        guide = self._guide()
        for slot in range(3):
            for area in range(9):
                type_index = guide.type_index(slot, area)
                assert guide.type_coords(type_index) == (slot, area)
                assert guide.area_of_type(type_index) == area

    def test_lane_flow_respects_capacities(self):
        guide = self._guide()
        for (wtype, ttype), units in guide.lane_flow.items():
            assert units <= guide.worker_nodes(wtype)
            assert units <= guide.task_nodes(ttype)


class TestScipyBackendAgreement:
    @given(st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_scipy_equals_dinic(self, seed):
        grid, timeline, travel = _small_setup()
        rng = random.Random(seed)
        a = _random_counts(rng, 3, 9, rng.randint(0, 25))
        b = _random_counts(rng, 3, 9, rng.randint(0, 25))
        via_scipy = build_guide(a, b, grid, timeline, travel, 20.0, 8.0, method="scipy")
        via_dinic = build_guide(a, b, grid, timeline, travel, 20.0, 8.0, method="dinic")
        assert via_scipy.matched_pairs == via_dinic.matched_pairs
