"""Tests for repro.graph.maxflow (Edmonds–Karp and Dinic)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlowError
from repro.graph.maxflow import dinic, edmonds_karp
from repro.graph.mincut import residual_min_cut
from repro.graph.network import FlowNetwork


def _diamond():
    """The classic 4-node diamond with max flow 2000 + 1 bottleneck."""
    network = FlowNetwork(4)
    network.add_edge(0, 1, 1000)
    network.add_edge(0, 2, 1000)
    network.add_edge(1, 3, 1000)
    network.add_edge(2, 3, 1000)
    network.add_edge(1, 2, 1)
    return network


def _random_network(rng: random.Random, n_nodes: int, n_edges: int) -> FlowNetwork:
    network = FlowNetwork(n_nodes)
    for _ in range(n_edges):
        tail = rng.randrange(n_nodes)
        head = rng.randrange(n_nodes)
        if tail == head:
            continue
        network.add_edge(tail, head, rng.randint(1, 10))
    return network


@pytest.mark.parametrize("solver", [edmonds_karp, dinic])
class TestKnownInstances:
    def test_diamond(self, solver):
        assert solver(_diamond(), 0, 3) == 2000

    def test_single_edge(self, solver):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 7)
        assert solver(network, 0, 1) == 7

    def test_disconnected(self, solver):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 5)
        network.add_edge(2, 3, 5)
        assert solver(network, 0, 3) == 0

    def test_serial_bottleneck(self, solver):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 9)
        network.add_edge(1, 2, 2)
        network.add_edge(2, 3, 9)
        assert solver(network, 0, 3) == 2

    def test_parallel_edges(self, solver):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 3)
        network.add_edge(0, 1, 4)
        assert solver(network, 0, 1) == 7

    def test_conservation_after_solve(self, solver):
        network = _diamond()
        solver(network, 0, 3)
        network.check_conservation(0, 3)

    def test_bad_endpoints(self, solver):
        network = FlowNetwork(3)
        with pytest.raises(FlowError):
            solver(network, 0, 0)
        with pytest.raises(FlowError):
            solver(network, 0, 5)


class TestAgreement:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_edmonds_karp_equals_dinic(self, seed):
        rng = random.Random(seed)
        n_nodes = rng.randint(2, 12)
        n_edges = rng.randint(0, 30)
        a = _random_network(random.Random(seed), n_nodes, n_edges)
        b = _random_network(random.Random(seed), n_nodes, n_edges)
        source, sink = 0, n_nodes - 1
        if source == sink:
            return
        assert edmonds_karp(a, source, sink) == dinic(b, source, sink)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_flow_value_equals_min_cut(self, seed):
        rng = random.Random(seed)
        n_nodes = rng.randint(2, 10)
        network = _random_network(rng, n_nodes, rng.randint(0, 25))
        source, sink = 0, n_nodes - 1
        value = dinic(network, source, sink)
        cut = residual_min_cut(network, source, sink)
        assert cut.capacity == value
