"""Tests for repro.core.greedy (SimpleGreedy)."""

import pytest

from repro.analysis.audit import audit_outcome
from repro.core.greedy import run_simple_greedy
from repro.model.entities import Task, Worker
from repro.model.instance import Instance
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


class TestExample1:
    def test_matches_example2(self, example1):
        instance, _a, _b, _module = example1
        outcome = run_simple_greedy(instance)
        assert outcome.size == 2
        # Exactly r1 and r2 are served (the paper's Example 2).
        matched_tasks = sorted(task for _w, task in outcome.matching)
        assert matched_tasks == [0, 1]


class TestNearestSelection:
    def _instance(self, tasks):
        grid = Grid.square(4, cell_size=5.0)
        timeline = Timeline(2, 50.0)
        travel = TravelModel(1.0)
        workers = [Worker(id=0, location=Point(10, 10), start=5.0, duration=50.0)]
        return Instance(workers=workers, tasks=tasks, grid=grid, timeline=timeline, travel=travel)

    def test_picks_nearest_feasible_task(self):
        tasks = [
            Task(id=0, location=Point(18, 10), start=0.0, duration=30.0),
            Task(id=1, location=Point(13, 10), start=0.0, duration=30.0),
        ]
        outcome = run_simple_greedy(self._instance(tasks))
        assert outcome.matching.task_of(0) == 1  # the closer task wins

    def test_skips_expired_tasks(self):
        tasks = [
            Task(id=0, location=Point(10.5, 10), start=0.0, duration=2.0),  # dead by t=5
            Task(id=1, location=Point(14, 10), start=0.0, duration=30.0),
        ]
        outcome = run_simple_greedy(self._instance(tasks))
        assert outcome.matching.task_of(0) == 1

    def test_worker_deadline_respected(self):
        grid = Grid.square(4, cell_size=5.0)
        timeline = Timeline(2, 50.0)
        travel = TravelModel(1.0)
        workers = [Worker(id=0, location=Point(10, 10), start=0.0, duration=5.0)]
        tasks = [Task(id=0, location=Point(10, 10), start=6.0, duration=30.0)]
        instance = Instance(workers=workers, tasks=tasks, grid=grid, timeline=timeline, travel=travel)
        assert run_simple_greedy(instance).size == 0


class TestIndexedEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_matching_size(self, seed):
        generator = SyntheticGenerator(
            SyntheticConfig(
                n_workers=250, n_tasks=250, grid_side=8, n_slots=6, seed=seed
            )
        )
        instance = generator.generate()
        naive = run_simple_greedy(instance, indexed=False)
        indexed = run_simple_greedy(instance, indexed=True)
        assert naive.size == indexed.size
        assert sorted(naive.matching.pairs()) == sorted(indexed.matching.pairs())


class TestPhysicalFeasibility:
    def test_all_matches_meet_deadlines(self, small_instance):
        """Wait-in-place matches are feasible by construction: the audit
        must report zero violations."""
        outcome = run_simple_greedy(small_instance)
        audit = audit_outcome(small_instance, outcome)
        assert audit.violation_rate == 0.0

    def test_decisions_cover_everyone(self, small_instance):
        outcome = run_simple_greedy(small_instance)
        assert len(outcome.worker_decisions) == small_instance.n_workers
        assert len(outcome.task_decisions) == small_instance.n_tasks
