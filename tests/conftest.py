"""Shared fixtures: small instances, the Example 1 workload, generators."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
if str(EXAMPLES_DIR) not in sys.path:
    sys.path.insert(0, str(EXAMPLES_DIR))

from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator  # noqa: E402


@pytest.fixture(scope="session")
def example1():
    """The paper's Example 1 instance plus its Figure 1(d) predictions."""
    import example1_walkthrough as module

    instance = module.build_example_instance()
    a, b = module.figure_1d_predictions(instance)
    return instance, a, b, module


@pytest.fixture(scope="session")
def small_generator():
    """A dense small synthetic generator (fast, POLAR-friendly density)."""
    config = SyntheticConfig(
        n_workers=600,
        n_tasks=600,
        grid_side=10,
        n_slots=8,
        task_duration_slots=2.0,
        worker_duration_slots=3.0,
        seed=11,
    )
    return SyntheticGenerator(config)


@pytest.fixture(scope="session")
def small_instance(small_generator):
    """One materialised instance of :func:`small_generator`."""
    return small_generator.generate()


@pytest.fixture(scope="session")
def small_guide(small_generator):
    """The oracle-fed guide for :func:`small_generator`."""
    from repro.core.guide import build_guide
    from repro.streams.oracle import exact_oracle

    generator = small_generator
    config = generator.config
    slot_minutes = generator.timeline.slot_minutes
    worker_counts, task_counts = exact_oracle(generator)
    return build_guide(
        worker_counts,
        task_counts,
        generator.grid,
        generator.timeline,
        generator.travel,
        worker_duration=config.worker_duration_slots * slot_minutes,
        task_duration=config.task_duration_slots * slot_minutes,
    )
