"""Tests for repro.streams.taxi (the Beijing/Hangzhou stand-in)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.taxi import CityConfig, Hotspot, TaxiCity, beijing_config, hangzhou_config


@pytest.fixture(scope="module")
def city():
    return TaxiCity(beijing_config().scaled(0.02))


class TestConfig:
    def test_named_configs(self):
        beijing = beijing_config()
        hangzhou = hangzhou_config()
        assert beijing.daily_tasks == 54_129
        assert hangzhou.daily_workers == 49_324
        assert beijing.nx * beijing.ny == 600
        assert beijing.n_slots == 12  # Table 3's t = 12

    def test_scaled(self):
        config = beijing_config().scaled(0.1)
        assert config.daily_tasks == pytest.approx(5413, abs=1)
        with pytest.raises(ConfigurationError):
            beijing_config().scaled(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CityConfig(name="x", task_hotspots=(), worker_hotspots=())
        with pytest.raises(ConfigurationError):
            Hotspot(col=0, row=0, weight=1.0, spread=0.0)

    def test_hotspot_weekend_weight(self):
        spot = Hotspot(col=0, row=0, weight=0.5, spread=1.0, weekend_weight=0.1)
        assert spot.weight_for(False) == 0.5
        assert spot.weight_for(True) == 0.1
        plain = Hotspot(col=0, row=0, weight=0.5, spread=1.0)
        assert plain.weight_for(True) == 0.5


class TestWeather:
    def test_shape_and_values(self, city):
        weather = city.weather_for_days(3)
        assert weather.shape == (3, city.config.n_slots)
        assert set(np.unique(weather)).issubset({0, 1, 2})

    def test_deterministic_per_absolute_day(self, city):
        a = city.weather_for_days(5)
        b = city.weather_for_days(3, start_day=2)
        assert (a[2:5] == b).all()

    def test_invalid_days(self, city):
        with pytest.raises(ConfigurationError):
            city.weather_for_days(0)

    def test_day_of_week(self):
        assert TaxiCity.day_of_week(0) == 0
        assert TaxiCity.day_of_week(6) == 6
        assert TaxiCity.day_of_week(7) == 0


class TestIntensity:
    def test_shapes(self, city):
        intensity = city.task_intensity(0)
        assert intensity.shape == (city.config.n_slots, city.grid.n_areas)
        assert (intensity >= 0).all()

    def test_daily_volume_close_to_config(self, city):
        clear = np.zeros(city.config.n_slots, dtype=np.int64)
        weekday_total = city.task_intensity(0, weather=clear).sum()
        assert weekday_total == pytest.approx(city.config.daily_tasks, rel=0.01)

    def test_weekend_damping(self, city):
        clear = np.zeros(city.config.n_slots, dtype=np.int64)
        weekday = city.task_intensity(0, weather=clear).sum()
        weekend = city.task_intensity(5, weather=clear).sum()
        assert weekend < weekday

    def test_rain_boosts_demand_dampens_supply(self, city):
        clear = np.zeros(city.config.n_slots, dtype=np.int64)
        rain = np.full(city.config.n_slots, 2, dtype=np.int64)
        assert city.task_intensity(0, rain).sum() > city.task_intensity(0, clear).sum()
        assert city.worker_intensity(0, rain).sum() < city.worker_intensity(0, clear).sum()

    def test_rush_hours_dominate(self, city):
        clear = np.zeros(city.config.n_slots, dtype=np.int64)
        per_slot = city.task_intensity(0, clear).sum(axis=1)
        slot_hours = 24 / city.config.n_slots
        morning = int(city.config.morning_peak_hour / slot_hours)
        night = 1  # deep night slot
        assert per_slot[morning] > 2 * per_slot[night]


class TestHistoryAndDays:
    def test_history_shapes(self, city):
        tasks, workers = city.generate_history(4)
        assert tasks.counts.shape == (4, city.config.n_slots, city.grid.n_areas)
        assert workers.counts.shape == tasks.counts.shape
        assert (tasks.day_of_week == np.array([0, 1, 2, 3])).all()

    def test_history_deterministic(self, city):
        a, _ = city.generate_history(3)
        b, _ = city.generate_history(3)
        assert (a.counts == b.counts).all()

    def test_generate_day_matches_history_counts(self, city):
        tasks, workers = city.generate_history(2)
        instance = city.generate_day(1)
        assert (instance.task_counts() == tasks.counts[1]).all()
        assert (instance.worker_counts() == workers.counts[1]).all()

    def test_generate_day_entity_validity(self, city):
        instance = city.generate_day(0)
        assert instance.n_tasks > 0 and instance.n_workers > 0
        slot_minutes = city.timeline.slot_minutes
        assert instance.tasks[0].duration == city.config.task_duration_slots * slot_minutes

    def test_task_duration_override(self, city):
        instance = city.generate_day(0, task_duration_slots=0.5)
        assert instance.tasks[0].duration == 0.5 * city.timeline.slot_minutes
        with pytest.raises(ConfigurationError):
            city.generate_day(0, task_duration_slots=0)

    def test_day_context(self, city):
        context = city.day_context(5)
        assert context.day_of_week == 5
        assert context.is_weekend
        assert context.weather.shape == (city.config.n_slots,)
