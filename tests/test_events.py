"""Tests for repro.model.events."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.model.entities import Task, Worker
from repro.model.events import TASK, WORKER, Arrival, build_stream, resample_order
from repro.spatial.geometry import Point


def _worker(ident, start):
    return Worker(id=ident, location=Point(0, 0), start=start, duration=1.0)


def _task(ident, start):
    return Task(id=ident, location=Point(1, 1), start=start, duration=1.0)


class TestArrival:
    def test_kind_flags(self):
        event = Arrival(time=1.0, seq=0, kind=WORKER, entity=_worker(0, 1.0))
        assert event.is_worker and not event.is_task

    def test_bad_kind_raises(self):
        with pytest.raises(SimulationError):
            Arrival(time=1.0, seq=0, kind="driver", entity=_worker(0, 1.0))

    def test_time_mismatch_raises(self):
        with pytest.raises(SimulationError):
            Arrival(time=2.0, seq=0, kind=WORKER, entity=_worker(0, 1.0))


class TestBuildStream:
    def test_sorted_by_time(self):
        stream = build_stream([_worker(0, 5.0), _worker(1, 1.0)], [_task(0, 3.0)])
        assert [e.time for e in stream] == [1.0, 3.0, 5.0]
        assert [e.seq for e in stream] == [0, 1, 2]

    def test_worker_before_task_on_tie(self):
        stream = build_stream([_worker(0, 2.0)], [_task(0, 2.0)])
        assert stream[0].is_worker and stream[1].is_task

    def test_id_breaks_ties_within_kind(self):
        stream = build_stream([_worker(3, 2.0), _worker(1, 2.0)], [])
        assert [e.entity.id for e in stream] == [1, 3]

    def test_empty(self):
        assert build_stream([], []) == []


class TestResampleOrder:
    def _stream(self):
        workers = [_worker(i, float(i // 2)) for i in range(6)]
        tasks = [_task(i, float(i // 3)) for i in range(6)]
        return build_stream(workers, tasks)

    def test_preserves_multiset(self):
        stream = self._stream()
        shuffled = resample_order(stream, random.Random(5))
        assert sorted(e.entity.id for e in shuffled if e.is_worker) == sorted(
            e.entity.id for e in stream if e.is_worker
        )
        assert len(shuffled) == len(stream)

    def test_preserves_times_and_order(self):
        shuffled = resample_order(self._stream(), random.Random(5))
        times = [e.time for e in shuffled]
        assert times == sorted(times)
        assert [e.seq for e in shuffled] == list(range(len(shuffled)))

    def test_entity_times_untouched(self):
        shuffled = resample_order(self._stream(), random.Random(5))
        for event in shuffled:
            assert event.time == event.entity.start

    @given(st.integers(0, 2**30))
    def test_any_seed_valid(self, seed):
        shuffled = resample_order(self._stream(), random.Random(seed))
        assert len(shuffled) == 12
