"""Tests for repro.core.theory (Theorems 1–2, Lemma 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    azuma_deviation_bound,
    expected_min_poisson,
    poisson_pmf,
    polar_op_ratio,
    polar_ratio,
)
from repro.errors import ConfigurationError


class TestConstants:
    def test_polar_ratio_value(self):
        assert polar_ratio() == pytest.approx((1 - 1 / math.e) ** 2)
        assert polar_ratio() == pytest.approx(0.3996, abs=1e-4)

    def test_polar_op_ratio_value(self):
        # Full-precision series value is ~0.4762; the paper takes "the
        # first three terms" and quotes 0.47 (a lower bound).
        assert polar_op_ratio() == pytest.approx(0.4762, abs=1e-3)

    def test_truncations_undershoot_and_converge(self):
        # Truncating the series always undershoots (every term is
        # positive), which is why the paper can quote the truncated 0.47
        # as a valid lower bound of the true constant.
        values = [polar_op_ratio(terms=t) for t in (2, 3, 5, 10, 64)]
        assert values == sorted(values)
        assert values[2] >= 0.47  # five i-terms already clear the paper's bound
        assert values[-1] == pytest.approx(polar_op_ratio(), abs=1e-12)

    def test_polar_op_beats_polar(self):
        assert polar_op_ratio() > polar_ratio()

    def test_invalid_terms(self):
        with pytest.raises(ConfigurationError):
            polar_op_ratio(terms=0)
        with pytest.raises(ConfigurationError):
            expected_min_poisson(terms=0)


class TestPoissonPmf:
    def test_values(self):
        assert poisson_pmf(0, 1.0) == pytest.approx(math.exp(-1))
        assert poisson_pmf(1, 1.0) == pytest.approx(math.exp(-1))
        assert poisson_pmf(2, 1.0) == pytest.approx(math.exp(-1) / 2)

    def test_sums_to_one(self):
        total = sum(poisson_pmf(k, 2.5) for k in range(80))
        assert total == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            poisson_pmf(-1)
        with pytest.raises(ConfigurationError):
            poisson_pmf(1, 0.0)


class TestSeriesIdentity:
    @given(st.floats(0.2, 4.0))
    @settings(max_examples=20, deadline=None)
    def test_lemma3_series_equals_expected_min(self, mu):
        """Lemma 3's rearranged series is exactly E[min(W, R)] for
        identically distributed Poissons — the identity behind the 0.47."""
        assert polar_op_ratio(mu=mu, terms=80) == pytest.approx(
            expected_min_poisson(mu_w=mu, mu_r=mu, terms=80), abs=1e-9
        )

    def test_expected_min_monotone_in_mu(self):
        values = [expected_min_poisson(mu_w=mu, mu_r=mu) for mu in (0.5, 1.0, 2.0)]
        assert values[0] < values[1] < values[2]


class TestAzuma:
    def test_bound_decreases_with_epsilon(self):
        assert azuma_deviation_bound(0.2, 100, 100) < azuma_deviation_bound(0.1, 100, 100)

    def test_bound_decreases_with_population(self):
        assert azuma_deviation_bound(0.1, 1000, 1000) < azuma_deviation_bound(0.1, 10, 10)

    def test_capped_at_one(self):
        assert azuma_deviation_bound(0.0, 5, 5) == 1.0

    def test_matches_formula(self):
        assert azuma_deviation_bound(0.3, 50, 50) == pytest.approx(
            2 * math.exp(-(0.3**2) * 100 / 2)
        )

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            azuma_deviation_bound(-0.1, 10, 10)
        with pytest.raises(ConfigurationError):
            azuma_deviation_bound(0.1, 0, 0)
