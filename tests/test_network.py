"""Tests for repro.graph.network."""

import pytest

from repro.errors import FlowError, GraphError
from repro.graph.network import FlowNetwork


class TestConstruction:
    def test_invalid_node_count(self):
        with pytest.raises(GraphError):
            FlowNetwork(0)

    def test_add_edge_bounds(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            network.add_edge(0, 3, 1)
        with pytest.raises(GraphError):
            network.add_edge(-1, 0, 1)

    def test_self_loop_rejected(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            network.add_edge(1, 1, 1)

    def test_negative_capacity_rejected(self):
        network = FlowNetwork(3)
        with pytest.raises(GraphError):
            network.add_edge(0, 1, -2)

    def test_edge_ids_and_twins(self):
        network = FlowNetwork(3)
        e0 = network.add_edge(0, 1, 5)
        e1 = network.add_edge(1, 2, 3)
        assert (e0, e1) == (0, 2)
        assert network.n_edges == 2
        assert network.to[e0] == 1 and network.to[e0 ^ 1] == 0


class TestFlowOps:
    def test_push_and_residuals(self):
        network = FlowNetwork(2)
        e = network.add_edge(0, 1, 5)
        network.push(e, 3)
        assert network.flow_on(e) == 3
        assert network.residual[e] == 2
        assert network.residual[e ^ 1] == 3

    def test_push_too_much_raises(self):
        network = FlowNetwork(2)
        e = network.add_edge(0, 1, 5)
        with pytest.raises(FlowError):
            network.push(e, 6)

    def test_push_negative_raises(self):
        network = FlowNetwork(2)
        e = network.add_edge(0, 1, 5)
        with pytest.raises(FlowError):
            network.push(e, -1)

    def test_flow_on_reverse_twin_raises(self):
        network = FlowNetwork(2)
        e = network.add_edge(0, 1, 5)
        with pytest.raises(FlowError):
            network.flow_on(e ^ 1)

    def test_reset_flow(self):
        network = FlowNetwork(2)
        e = network.add_edge(0, 1, 5)
        network.push(e, 4)
        network.reset_flow()
        assert network.flow_on(e) == 0

    def test_conservation_check(self):
        network = FlowNetwork(3)
        e01 = network.add_edge(0, 1, 5)
        e12 = network.add_edge(1, 2, 5)
        network.push(e01, 2)
        with pytest.raises(FlowError):
            network.check_conservation(0, 2)
        network.push(e12, 2)
        network.check_conservation(0, 2)
        assert network.total_flow(0) == 2

    def test_edges_view_and_pairs(self):
        network = FlowNetwork(3)
        e = network.add_edge(0, 1, 5, cost=2.5)
        network.add_edge(1, 2, 1)
        network.push(e, 2)
        views = list(network.edges())
        assert len(views) == 2
        assert views[0].flow == 2 and views[0].cost == 2.5
        assert network.flow_by_pair() == {(0, 1): 2}
