"""Tests for repro.core.batch (the GR baseline)."""

import pytest

from repro.analysis.audit import audit_outcome
from repro.core.batch import run_batch
from repro.core.greedy import run_simple_greedy
from repro.errors import ConfigurationError
from repro.model.entities import Task, Worker
from repro.model.instance import Instance
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel


class TestBasics:
    def test_invalid_window(self, small_instance):
        with pytest.raises(ConfigurationError):
            run_batch(small_instance, window_minutes=0)

    def test_extras_recorded(self, small_instance):
        outcome = run_batch(small_instance)
        assert outcome.extras["batches"] >= 1
        assert outcome.extras["window_minutes"] > 0

    def test_empty_instance(self):
        instance = Instance(
            workers=[], tasks=[], grid=Grid.square(2), timeline=Timeline(2, 10.0),
            travel=TravelModel(1.0),
        )
        assert run_batch(instance).size == 0


class TestBatchOptimality:
    def test_beats_greedy_on_crossing_pairs(self):
        """Two workers and two tasks arriving together: greedy's nearest
        choice strands one pair; the batch matching pairs both."""
        grid = Grid.square(10, cell_size=1.0)
        timeline = Timeline(1, 100.0)
        travel = TravelModel(1.0)
        # Worker A can serve both tasks; worker B only the near one.
        workers = [
            Worker(id=0, location=Point(5.0, 5.0), start=0.0, duration=90.0),  # A
            Worker(id=1, location=Point(3.0, 5.0), start=0.0, duration=90.0),  # B
        ]
        tasks = [
            Task(id=0, location=Point(5.5, 5.0), start=0.5, duration=3.0),  # near both
            Task(id=1, location=Point(8.0, 5.0), start=0.5, duration=4.0),  # only A reaches
        ]
        instance = Instance(workers=workers, tasks=tasks, grid=grid, timeline=timeline, travel=travel)
        greedy = run_simple_greedy(instance)
        batch = run_batch(instance, window_minutes=1.0)
        assert greedy.size == 1  # r0 grabs A (nearest), r1 unreachable for B
        assert batch.size == 2

    def test_all_matches_meet_deadlines(self, small_instance):
        outcome = run_batch(small_instance)
        audit = audit_outcome(small_instance, outcome)
        assert audit.violation_rate == 0.0


class TestWindowSensitivity:
    def test_monotone_batches(self, small_instance):
        short = run_batch(small_instance, window_minutes=2.0)
        long = run_batch(small_instance, window_minutes=30.0)
        assert short.extras["batches"] >= long.extras["batches"]

    def test_huge_window_expires_everything(self):
        grid = Grid.square(4)
        timeline = Timeline(2, 10.0)
        travel = TravelModel(1.0)
        workers = [Worker(id=0, location=Point(1, 1), start=0.0, duration=1.0)]
        tasks = [Task(id=0, location=Point(1, 1), start=0.0, duration=1.0)]
        instance = Instance(workers=workers, tasks=tasks, grid=grid, timeline=timeline, travel=travel)
        # Window far beyond both deadlines: nothing can ever be matched.
        outcome = run_batch(instance, window_minutes=500.0)
        assert outcome.size == 0
