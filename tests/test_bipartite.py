"""Tests for repro.graph.bipartite (Hopcroft–Karp and greedy)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph, greedy_matching, hopcroft_karp
from repro.graph.maxflow import dinic
from repro.graph.network import FlowNetwork


def _random_bipartite(rng: random.Random):
    n_left = rng.randint(0, 10)
    n_right = rng.randint(0, 10)
    graph = BipartiteGraph(n_left, n_right)
    if n_left and n_right:
        for _ in range(rng.randint(0, 30)):
            graph.add_edge(rng.randrange(n_left), rng.randrange(n_right))
    return graph


def _matching_via_maxflow(graph: BipartiteGraph) -> int:
    n = graph.n_left + graph.n_right + 2
    source, sink = n - 2, n - 1
    network = FlowNetwork(n)
    for left in range(graph.n_left):
        network.add_edge(source, left, 1)
    for right in range(graph.n_right):
        network.add_edge(graph.n_left + right, sink, 1)
    for left in range(graph.n_left):
        for right in set(graph.adj[left]):
            network.add_edge(left, graph.n_left + right, 1)
    return dinic(network, source, sink)


class TestConstruction:
    def test_negative_sizes(self):
        with pytest.raises(GraphError):
            BipartiteGraph(-1, 2)

    def test_edge_bounds(self):
        graph = BipartiteGraph(2, 2)
        with pytest.raises(GraphError):
            graph.add_edge(2, 0)
        with pytest.raises(GraphError):
            graph.add_edge(0, 2)

    def test_from_edges(self):
        graph = BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 1)])
        assert graph.n_edges == 2


class TestKnownGraphs:
    def test_perfect_matching(self):
        graph = BipartiteGraph.from_edges(3, 3, [(0, 0), (1, 1), (2, 2)])
        result = hopcroft_karp(graph)
        assert result.size == 3
        result.validate(graph)

    def test_augmenting_path_needed(self):
        # Greedy gets 1 by pairing (0,0); the maximum is 2 via augmenting.
        graph = BipartiteGraph.from_edges(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert greedy_matching(graph).size >= 1
        assert hopcroft_karp(graph).size == 2

    def test_star(self):
        graph = BipartiteGraph.from_edges(3, 1, [(0, 0), (1, 0), (2, 0)])
        assert hopcroft_karp(graph).size == 1

    def test_empty(self):
        assert hopcroft_karp(BipartiteGraph(0, 0)).size == 0
        assert hopcroft_karp(BipartiteGraph(3, 3)).size == 0

    def test_pairs(self):
        graph = BipartiteGraph.from_edges(2, 2, [(0, 1), (1, 0)])
        result = hopcroft_karp(graph)
        assert sorted(result.pairs()) == [(0, 1), (1, 0)]


class TestValidation:
    def test_validate_catches_asymmetry(self):
        graph = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        result = hopcroft_karp(graph)
        result.right_match[0] = 1  # corrupt
        with pytest.raises(GraphError):
            result.validate(graph)

    def test_validate_catches_non_edge(self):
        graph = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        result = hopcroft_karp(graph)
        result.left_match[0] = 1
        result.right_match[1] = 0
        result.right_match[0] = -1
        with pytest.raises(GraphError):
            result.validate(graph)


class TestProperties:
    @given(st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_hopcroft_karp_equals_maxflow(self, seed):
        graph = _random_bipartite(random.Random(seed))
        result = hopcroft_karp(graph)
        result.validate(graph)
        assert result.size == _matching_via_maxflow(graph)

    @given(st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_greedy_is_valid_and_half_optimal(self, seed):
        graph = _random_bipartite(random.Random(seed))
        greedy = greedy_matching(graph)
        greedy.validate(graph)
        maximum = hopcroft_karp(graph).size
        assert greedy.size <= maximum
        assert 2 * greedy.size >= maximum
