"""Tests for the seven offline predictors (Section 6.3.1).

Each predictor runs on a small weather-driven city history; beyond the
shared contract (shapes, non-negativity, determinism) the suite checks
predictor-specific behaviours: HA's weekday averaging, LR's trend
tracking, PAQ's recency scaling, ARIMA's seasonal forecasting, and that
the feature-based models actually use their features.
"""

import numpy as np
import pytest

from repro.prediction import ALL_PREDICTORS, make_predictor
from repro.prediction.arima import ArimaPredictor, fit_arma, forecast_arma
from repro.prediction.base import DayContext, DemandHistory
from repro.prediction.features import CellFeatureizer
from repro.prediction.historical import HistoricalAverage
from repro.prediction.metrics import error_rate
from repro.prediction.paq import PredictiveAggregation
from repro.prediction.regression import LaggedLinearRegression
from repro.streams.taxi import TaxiCity, beijing_config


@pytest.fixture(scope="module")
def city_history():
    city = TaxiCity(beijing_config().scaled(0.05))
    tasks, _workers = city.generate_history(21)
    context = city.day_context(21)
    actual = city.generate_day(21).task_counts()
    return city, tasks, context, actual


class TestSharedContract:
    @pytest.mark.parametrize("name", ALL_PREDICTORS)
    def test_fit_predict_shape_and_range(self, name, city_history):
        _city, history, context, _actual = city_history
        predictor = make_predictor(name, seed=3)
        predictor.fit(history)
        forecast = predictor.predict(context)
        assert forecast.shape == (history.n_slots, history.n_areas)
        assert (forecast >= 0).all()
        assert np.isfinite(forecast).all()

    @pytest.mark.parametrize("name", ["HA", "PAQ", "LR"])
    def test_deterministic(self, name, city_history):
        _city, history, context, _actual = city_history
        a = make_predictor(name, seed=1)
        a.fit(history)
        b = make_predictor(name, seed=1)
        b.fit(history)
        assert (a.predict(context) == b.predict(context)).all()

    def test_make_predictor_unknown(self):
        with pytest.raises(ValueError):
            make_predictor("ORACLE")

    def test_all_beat_trivial_zero_on_volume(self, city_history):
        """Every predictor's total forecast lands near the actual total."""
        _city, history, context, actual = city_history
        actual_total = actual.sum()
        for name in ALL_PREDICTORS:
            predictor = make_predictor(name, seed=0)
            predictor.fit(history)
            total = predictor.predict(context).sum()
            assert 0.4 * actual_total < total < 2.2 * actual_total, name


class TestHistoricalAverage:
    def test_exact_on_pure_weekly_pattern(self):
        counts = np.zeros((14, 2, 2), dtype=np.int64)
        for day in range(14):
            counts[day] = (day % 7) + 1  # value equals its weekday + 1
        history = DemandHistory(
            counts=counts,
            day_of_week=np.arange(14) % 7,
            weather=np.zeros((14, 2), dtype=np.int64),
        )
        predictor = HistoricalAverage()
        predictor.fit(history)
        forecast = predictor.predict(
            DayContext(day_of_week=3, weather=np.zeros(2), day_index=14)
        )
        assert (forecast == 4.0).all()

    def test_unseen_weekday_falls_back_to_overall_mean(self):
        counts = np.full((2, 2, 2), 6, dtype=np.int64)
        history = DemandHistory(
            counts=counts,
            day_of_week=np.array([0, 1]),
            weather=np.zeros((2, 2), dtype=np.int64),
        )
        predictor = HistoricalAverage()
        predictor.fit(history)
        forecast = predictor.predict(
            DayContext(day_of_week=6, weather=np.zeros(2), day_index=2)
        )
        assert (forecast == 6.0).all()


class TestLaggedLinearRegression:
    def test_tracks_linear_trend(self):
        # Counts grow by exactly 1 per day: y(d) = d + 5.
        n_days = 20
        counts = np.empty((n_days, 2, 2), dtype=np.int64)
        for day in range(n_days):
            counts[day] = day + 5
        history = DemandHistory(
            counts=counts,
            day_of_week=np.arange(n_days) % 7,
            weather=np.zeros((n_days, 2), dtype=np.int64),
        )
        predictor = LaggedLinearRegression(n_lags=5)
        predictor.fit(history)
        forecast = predictor.predict(
            DayContext(day_of_week=0, weather=np.zeros(2), day_index=n_days)
        )
        assert forecast == pytest.approx(np.full((2, 2), n_days + 5), rel=0.05)

    def test_too_short_history_raises(self):
        history = DemandHistory(
            counts=np.ones((1, 2, 2), dtype=np.int64),
            day_of_week=np.zeros(1, dtype=np.int64),
            weather=np.zeros((1, 2), dtype=np.int64),
        )
        with pytest.raises(Exception):
            LaggedLinearRegression().fit(history)


class TestPaq:
    def test_recent_level_scales_forecast(self):
        # Flat history at level 2, but the last 6 hours jump to 8.
        counts = np.full((4, 8, 2), 2, dtype=np.int64)
        counts[-1, -2:, :] = 8  # last 2 slots of 8 (= 6 h of a 24 h day)
        history = DemandHistory(
            counts=counts,
            day_of_week=np.arange(4) % 7,
            weather=np.zeros((4, 8), dtype=np.int64),
        )
        predictor = PredictiveAggregation(window_hours=6.0)
        predictor.fit(history)
        forecast = predictor.predict(
            DayContext(day_of_week=4, weather=np.zeros(8), day_index=4)
        )
        # The recent surge lifts the whole forecast above the flat level.
        assert forecast.mean() > 2.5

    def test_invalid_window(self):
        with pytest.raises(Exception):
            PredictiveAggregation(window_hours=0)


class TestArima:
    def test_arma_recovers_ar_coefficient(self):
        rng = np.random.default_rng(0)
        n = 600
        series = np.zeros(n)
        for t in range(1, n):
            series[t] = 0.7 * series[t - 1] + rng.normal(0, 0.5)
        phi, _theta, _intercept, _resid = fit_arma(series, p=1, q=0)
        assert phi[0] == pytest.approx(0.7, abs=0.12)

    def test_forecast_constant_series(self):
        series = np.full(100, 5.0)
        predictor = ArimaPredictor(p=2, q=1, seasonal=False)
        flat = predictor._forecast_area(series, season=0, steps=4)
        assert flat == pytest.approx(np.full(4, 5.0))

    def test_seasonal_pattern_carried_forward(self):
        # Period-4 sawtooth over 25 "days" of 4 slots.
        base = np.array([1.0, 5.0, 9.0, 3.0])
        counts = np.tile(base, 25).reshape(25, 4, 1).astype(np.int64)
        history = DemandHistory(
            counts=counts,
            day_of_week=np.arange(25) % 7,
            weather=np.zeros((25, 4), dtype=np.int64),
        )
        predictor = ArimaPredictor()
        predictor.fit(history)
        forecast = predictor.predict(
            DayContext(day_of_week=4, weather=np.zeros(4), day_index=25)
        )
        assert forecast[:, 0] == pytest.approx(base, abs=0.5)

    def test_invalid_orders(self):
        with pytest.raises(Exception):
            ArimaPredictor(p=0, q=0)

    def test_too_short_series_raises(self):
        with pytest.raises(Exception):
            fit_arma(np.arange(5.0), p=3, q=2)

    def test_forecast_arma_steps(self):
        out = forecast_arma(
            np.array([1.0, 2.0]), np.zeros(2), np.array([1.0]), np.array([]), 0.0, 3
        )
        assert out.shape == (3,)
        assert out[0] == pytest.approx(2.0)


class TestFeatureizer:
    def test_matrix_shapes(self, city_history):
        _city, history, context, _actual = city_history
        featureizer = CellFeatureizer(n_day_lags=3)
        featureizer.fit(history)
        design, target = featureizer.training_matrix(history)
        rows = (history.n_days - 1) * history.n_slots * history.n_areas
        assert design.shape == (rows, featureizer.n_features)
        assert target.shape == (rows,)
        target_design = featureizer.target_matrix(context)
        assert target_design.shape == (history.n_slots * history.n_areas, featureizer.n_features)

    def test_unfitted_raises(self, city_history):
        _city, history, context, _actual = city_history
        with pytest.raises(Exception):
            CellFeatureizer().training_matrix(history)
        with pytest.raises(Exception):
            CellFeatureizer().target_matrix(context)

    def test_invalid_lags(self):
        with pytest.raises(Exception):
            CellFeatureizer(n_day_lags=0)


class TestRelativeAccuracy:
    def test_feature_models_beat_ha_on_weather_city(self, city_history):
        """On weather-driven demand the nonlinear feature models should
        beat the weather-blind historical average (the Table 5 story).
        GBRT and HP-MSI are checked; NN is excluded (too few epochs on a
        tiny history to be reliable in unit tests)."""
        _city, history, context, actual = city_history
        ha = make_predictor("HA")
        ha.fit(history)
        ha_score = error_rate(actual, ha.predict(context))
        for name in ("GBRT", "HP-MSI"):
            predictor = make_predictor(name, seed=1)
            predictor.fit(history)
            score = error_rate(actual, predictor.predict(context))
            assert score <= ha_score * 1.25, (name, score, ha_score)
