"""Tests for repro.experiments.runner and .report."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.report import render, render_sweep, render_table
from repro.experiments.results import AlgoCell, SweepResult, TableResult
from repro.experiments.runner import run_algorithm_cell, run_algorithms_on_instance


class TestRunner:
    def test_all_algorithms(self, small_instance, small_guide):
        cells = run_algorithms_on_instance(
            small_instance, small_guide, measure_memory=False
        )
        assert set(cells) == {"SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT"}
        for cell in cells.values():
            assert cell.size >= 0
            assert cell.seconds >= 0
            assert cell.peak_mb is None

    def test_memory_measured_when_requested(self, small_instance, small_guide):
        cells = run_algorithms_on_instance(
            small_instance,
            small_guide,
            algorithms=("POLAR",),
            measure_memory=True,
        )
        assert cells["POLAR"].peak_mb is not None

    def test_polar_requires_guide(self, small_instance):
        with pytest.raises(ExperimentError):
            run_algorithms_on_instance(small_instance, None, algorithms=("POLAR",))

    def test_unknown_algorithm(self, small_instance, small_guide):
        with pytest.raises(ExperimentError):
            run_algorithms_on_instance(
                small_instance, small_guide, algorithms=("Magic",)
            )

    def test_cell_invalid_algorithm_key(self, small_instance, small_guide):
        with pytest.raises(ExperimentError, match="unknown algorithm"):
            run_algorithm_cell(small_instance, small_guide, "NotAnAlgorithm")

    def test_cell_polar_op_requires_guide(self, small_instance):
        with pytest.raises(ExperimentError, match="requires an offline guide"):
            run_algorithm_cell(small_instance, None, "POLAR-OP")

    def test_cell_supports_tgoa(self, small_instance):
        cell = run_algorithm_cell(
            small_instance, None, "TGOA", measure_memory=False
        )
        assert cell.size > 0

    def test_subset_without_guide(self, small_instance):
        cells = run_algorithms_on_instance(
            small_instance, None, algorithms=("SimpleGreedy",), measure_memory=False
        )
        assert "SimpleGreedy" in cells


class TestReport:
    def _sweep(self):
        sweep = SweepResult(experiment_id="fig_demo", x_label="|W|")
        sweep.add_point(5.0, {"POLAR": AlgoCell(100, 0.5, 2.0)})
        sweep.add_point(10.0, {"POLAR": AlgoCell(180, 0.6, 2.1)})
        sweep.notes["scale"] = "1"
        return sweep

    def test_render_sweep_contains_metrics(self):
        text = render_sweep(self._sweep())
        assert "Matching size" in text
        assert "Time (secs)" in text
        assert "Memory (MB)" in text
        assert "POLAR" in text and "180" in text
        assert "notes:" in text

    def test_render_sweep_skips_absent_memory(self):
        sweep = SweepResult(experiment_id="x", x_label="x")
        sweep.add_point(1.0, {"A": AlgoCell(1, 0.1, None)})
        assert "Memory" not in render_sweep(sweep)

    def test_render_table(self):
        table = TableResult(experiment_id="table_demo")
        table.set("HA", "ER beijing", 0.27)
        table.set("HP-MSI", "ER beijing", 0.239)
        text = render_table(table)
        assert "HP-MSI" in text and "0.239" in text and "table_demo" in text

    def test_render_dispatch(self):
        assert "fig_demo" in render(self._sweep())
        table = TableResult(experiment_id="t")
        assert "== t ==" in render(table)
