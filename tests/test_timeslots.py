"""Tests for repro.spatial.timeslots."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TimelineError
from repro.spatial.timeslots import Timeline


class TestConstruction:
    def test_day_helper(self):
        timeline = Timeline.day(96)
        assert timeline.slot_minutes == 15.0
        assert timeline.duration == 24 * 60

    def test_day_invalid(self):
        with pytest.raises(TimelineError):
            Timeline.day(0)

    def test_invalid_params(self):
        with pytest.raises(TimelineError):
            Timeline(0, 10)
        with pytest.raises(TimelineError):
            Timeline(10, 0)


class TestMapping:
    def test_slot_of_basics(self):
        timeline = Timeline(4, 15.0)
        assert timeline.slot_of(0.0) == 0
        assert timeline.slot_of(14.999) == 0
        assert timeline.slot_of(15.0) == 1
        assert timeline.slot_of(59.999) == 3

    def test_horizon_end_binds_last_slot(self):
        timeline = Timeline(4, 15.0)
        assert timeline.slot_of(60.0) == 3

    def test_out_of_horizon_raises(self):
        timeline = Timeline(4, 15.0)
        with pytest.raises(TimelineError):
            timeline.slot_of(-0.1)
        with pytest.raises(TimelineError):
            timeline.slot_of(60.1)

    def test_nonzero_origin(self):
        timeline = Timeline(2, 5.0, t0=100.0)
        assert timeline.slot_of(102.0) == 0
        assert timeline.slot_of(107.0) == 1
        assert timeline.horizon_end == 110.0

    def test_slot_bounds(self):
        timeline = Timeline(3, 10.0)
        assert timeline.slot_bounds(1) == (10.0, 20.0)
        assert timeline.slot_start(2) == 20.0
        assert timeline.slot_end(2) == 30.0

    def test_slot_mid(self):
        timeline = Timeline(3, 10.0)
        assert timeline.slot_mid(0) == 5.0

    def test_slot_index_out_of_range(self):
        timeline = Timeline(3, 10.0)
        with pytest.raises(TimelineError):
            timeline.slot_start(3)
        with pytest.raises(TimelineError):
            timeline.slot_mid(-1)

    @given(st.integers(1, 50), st.floats(0.5, 120), st.floats(0, 1))
    def test_mid_maps_back_to_slot(self, n_slots, slot_minutes, fraction):
        timeline = Timeline(n_slots, slot_minutes)
        slot = int(fraction * (n_slots - 1))
        assert timeline.slot_of(timeline.slot_mid(slot)) == slot

    @given(st.floats(0, 239.9))
    def test_slot_of_within_range(self, t):
        timeline = Timeline(16, 15.0)
        assert 0 <= timeline.slot_of(t) < 16


class TestHistogram:
    def test_counts_and_drops(self):
        timeline = Timeline(2, 10.0)
        counts = timeline.histogram([0.0, 5.0, 15.0, 25.0])
        assert counts == [2, 1]

    def test_iter_slots(self):
        assert list(Timeline(3, 1.0).iter_slots()) == [0, 1, 2]


class TestEquality:
    def test_equality_and_hash(self):
        assert Timeline(4, 15.0) == Timeline(4, 15.0)
        assert hash(Timeline(4, 15.0)) == hash(Timeline(4, 15.0))
        assert Timeline(4, 15.0) != Timeline(4, 10.0)
        assert Timeline(4, 15.0) != "timeline"
