"""Tests for repro.streams.synthetic (the Table 4 generator)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


class TestConfig:
    def test_defaults_match_table4_bold(self):
        config = SyntheticConfig()
        assert config.n_workers == 20_000
        assert config.n_tasks == 20_000
        assert config.grid_side == 50
        assert config.n_slots == 48
        assert config.task_duration_slots == 2.0
        assert config.task_temporal_mu == 0.5
        assert config.task_spatial_mean == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticConfig(n_workers=-1)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(grid_side=0)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(task_duration_slots=0)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(task_temporal_sigma=0)

    def test_scaled_override(self):
        config = SyntheticConfig().scaled(n_workers=5, task_duration_slots=1.0)
        assert config.n_workers == 5
        assert config.task_duration_slots == 1.0
        assert config.n_tasks == 20_000  # untouched


@pytest.fixture(scope="module")
def generator():
    return SyntheticGenerator(
        SyntheticConfig(n_workers=400, n_tasks=300, grid_side=10, n_slots=8, seed=5)
    )


class TestGeneration:
    def test_population_sizes(self, generator):
        instance = generator.generate()
        assert instance.n_workers == 400
        assert instance.n_tasks == 300

    def test_determinism(self, generator):
        a = generator.generate()
        b = generator.generate()
        assert [w.location for w in a.workers] == [w.location for w in b.workers]
        assert [t.start for t in a.tasks] == [t.start for t in b.tasks]

    def test_seed_override_changes_draw(self, generator):
        a = generator.generate(seed=1)
        b = generator.generate(seed=2)
        assert [w.location for w in a.workers] != [w.location for w in b.workers]

    def test_entities_within_domain(self, generator):
        instance = generator.generate()
        for worker in instance.workers:
            assert generator.grid.bounds.contains(worker.location)
            assert generator.timeline.contains(worker.start)

    def test_durations_in_minutes(self, generator):
        instance = generator.generate()
        slot_minutes = generator.timeline.slot_minutes
        config = generator.config
        assert instance.workers[0].duration == config.worker_duration_slots * slot_minutes
        assert instance.tasks[0].duration == config.task_duration_slots * slot_minutes


class TestExpectations:
    def test_shapes_and_totals(self, generator):
        a = generator.expected_worker_counts()
        b = generator.expected_task_counts()
        assert a.shape == (8, 100)
        assert b.shape == (8, 100)
        assert a.sum() == pytest.approx(400)
        assert b.sum() == pytest.approx(300)
        assert (a >= 0).all() and (b >= 0).all()

    def test_expectations_match_empirical(self, generator):
        """Aggregate counts from many draws track the analytic expectation."""
        expected = generator.expected_task_counts()
        totals = np.zeros_like(expected)
        n_draws = 20
        for seed in range(n_draws):
            totals += SyntheticGenerator(generator.config).generate(seed=seed).task_counts()
        empirical = totals / n_draws
        # Compare slot marginals (cell-level comparison is too noisy).
        expected_slots = expected.sum(axis=1)
        empirical_slots = empirical.sum(axis=1)
        assert np.abs(expected_slots - empirical_slots).max() < 12.0

    def test_spatial_variance_interpretation(self):
        """Table 4's cov fraction scales the *variance*: sigma = sqrt(f*side)."""
        config = SyntheticConfig(
            n_workers=10, n_tasks=10, grid_side=16, n_slots=4, task_spatial_cov=0.25
        )
        generator = SyntheticGenerator(config)
        assert generator._task_x.sigma == pytest.approx(np.sqrt(0.25 * 16))
        # Temporal sigma, by contrast, is the fraction times the horizon.
        assert generator._task_time.sigma == pytest.approx(
            config.task_temporal_sigma * generator.timeline.duration
        )
