"""Tests for repro.seeding (cross-process determinism)."""

import subprocess
import sys

from repro.seeding import derive_numpy_rng, derive_random, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "weather", 3) == derive_seed(1, "weather", 3)

    def test_distinct_parts_distinct_seeds(self):
        seeds = {
            derive_seed(1, "weather", day) for day in range(100)
        }
        assert len(seeds) == 100

    def test_order_matters(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_in_63_bit_range(self):
        seed = derive_seed("anything", 42)
        assert 0 <= seed < 2**63

    def test_stable_across_processes(self):
        """hash() is salted per process; derive_seed must not be."""
        code = "from repro.seeding import derive_seed; print(derive_seed(7, 'x'))"
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outputs) == 1
        assert outputs.pop() == str(derive_seed(7, "x"))


class TestRngs:
    def test_random_deterministic(self):
        assert derive_random("a", 1).random() == derive_random("a", 1).random()

    def test_numpy_deterministic(self):
        a = derive_numpy_rng("a", 1).integers(0, 1000, 5)
        b = derive_numpy_rng("a", 1).integers(0, 1000, 5)
        assert (a == b).all()
