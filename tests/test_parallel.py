"""Tests for the parallel sweep engine (parity, determinism, specs)."""

import multiprocessing
import pickle

import pytest

from repro.core.polar import run_polar
from repro.core.polar_op import run_polar_op
from repro.errors import ExperimentError
from repro.experiments.figures import run_fig4_workers, run_fig5_city
from repro.experiments.parallel import (
    CellSpec,
    CityPoint,
    SweepExecutor,
    SyntheticPoint,
    _execute_cell,
    _point_context,
    _SHARED_POINTS,
)
from repro.streams.synthetic import SyntheticConfig

TINY = 0.01
ALGOS = ("SimpleGreedy", "GR", "POLAR", "POLAR-OP", "OPT")
HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


class TestExecutor:
    def test_rejects_non_positive_jobs(self):
        with pytest.raises(ExperimentError):
            SweepExecutor(jobs=0)

    def test_cell_specs_are_picklable(self):
        spec = CellSpec(
            experiment_id="fig4_workers",
            point=SyntheticPoint(5000.0, SyntheticConfig(n_workers=50, n_tasks=50)),
            algorithm="POLAR",
            measure_memory=False,
            opt_method="auto",
            seed=0,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec
        city = CellSpec(
            experiment_id="fig5_beijing",
            point=CityPoint(1.0, "beijing", 0.01, 10, 1),
            algorithm="OPT",
            measure_memory=True,
            opt_method="compressed",
            seed=3,
        )
        assert pickle.loads(pickle.dumps(city)) == city

    def test_execute_cell_matches_direct_run(self, small_generator):
        """A cell regenerated from its spec reproduces the direct run."""
        from repro.core.guide import build_guide
        from repro.streams.oracle import exact_oracle

        config = small_generator.config
        spec = CellSpec(
            experiment_id="unit",
            point=SyntheticPoint(1.0, config),
            algorithm="POLAR",
            measure_memory=False,
            opt_method="auto",
            seed=0,
        )
        output = _execute_cell(spec)

        instance = small_generator.generate()
        worker_counts, task_counts = exact_oracle(small_generator)
        slot_minutes = small_generator.timeline.slot_minutes
        guide = build_guide(
            worker_counts,
            task_counts,
            small_generator.grid,
            small_generator.timeline,
            small_generator.travel,
            config.worker_duration_slots * slot_minutes,
            config.task_duration_slots * slot_minutes,
        )
        direct = run_polar(instance, guide, seed=0)
        assert output.cell.size == direct.size
        assert output.point_notes["guide_size@1"] == str(guide.matched_pairs)


class TestParallelParity:
    def test_fig4_sweep_parallel_matches_serial(self):
        """--jobs 4 and --jobs 1 produce bit-identical matching sizes."""
        serial = run_fig4_workers(
            scale=TINY, measure_memory=False, algorithms=ALGOS, jobs=1
        )
        parallel = run_fig4_workers(
            scale=TINY, measure_memory=False, algorithms=ALGOS, jobs=4
        )
        assert serial.x_values == parallel.x_values
        for algorithm in ALGOS:
            assert serial.series(algorithm, "size") == parallel.series(
                algorithm, "size"
            ), f"{algorithm} diverged between serial and parallel runs"
        # Sizes in provenance notes (guide sizes) must agree too.
        for key, value in serial.notes.items():
            if key.startswith("guide_size@"):
                assert parallel.notes[key] == value

    def test_city_sweep_parallel_matches_serial(self):
        serial = run_fig5_city(
            "hangzhou",
            scale=0.01,
            measure_memory=False,
            algorithms=("POLAR", "POLAR-OP"),
            history_days=10,
            jobs=1,
        )
        parallel = run_fig5_city(
            "hangzhou",
            scale=0.01,
            measure_memory=False,
            algorithms=("POLAR", "POLAR-OP"),
            history_days=10,
            jobs=2,
        )
        for algorithm in ("POLAR", "POLAR-OP"):
            assert serial.series(algorithm, "size") == parallel.series(
                algorithm, "size"
            )

    def test_serial_reruns_are_deterministic(self):
        first = run_fig4_workers(
            scale=TINY, measure_memory=False, algorithms=("POLAR",), jobs=1
        )
        second = run_fig4_workers(
            scale=TINY, measure_memory=False, algorithms=("POLAR",), jobs=1
        )
        assert first.series("POLAR", "size") == second.series("POLAR", "size")

    def test_cpu_seconds_recorded(self):
        result = run_fig4_workers(
            scale=TINY, measure_memory=False, algorithms=("POLAR",), jobs=1
        )
        cpu = result.series("POLAR", "cpu_seconds")
        assert all(value is not None and value >= 0 for value in cpu)


class TestForkCoW:
    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_pool_workers_never_rebuild_points(self):
        """Forked pool workers inherit the parent's prebuilt points via
        copy-on-write, so no cell regenerates an instance or guide."""
        result = run_fig4_workers(
            scale=TINY, measure_memory=False, algorithms=("POLAR",), jobs=2
        )
        assert result.notes["worker_rebuilds"] == "0"

    def test_serial_runs_have_no_worker_rebuilds_note(self):
        """The note counts *pool* rebuilds; the serial path has none."""
        result = run_fig4_workers(
            scale=TINY, measure_memory=False, algorithms=("POLAR",), jobs=1
        )
        assert "worker_rebuilds" not in result.notes

    def test_point_context_prefers_the_shared_map(self):
        """A point found in the fork-inherited map is returned as-is,
        with no rebuild and no LRU churn."""
        point = SyntheticPoint(1.0, SyntheticConfig(n_workers=5, n_tasks=5))
        sentinel = (object(), object(), {"prebuilt": "yes"})
        _SHARED_POINTS[point] = sentinel
        try:
            built, rebuilt = _point_context(point)
            assert built is sentinel
            assert rebuilt is False
        finally:
            _SHARED_POINTS.clear()


class TestTypedArrivals:
    def test_matches_per_event_typing(self, small_instance):
        events, types = small_instance.typed_arrivals()
        n_areas = small_instance.grid.n_areas
        assert len(events) == len(types)
        for event, type_index in zip(events, types):
            slot = small_instance.timeline.slot_of(event.entity.start)
            area = small_instance.grid.area_of(event.entity.location)
            assert type_index == slot * n_areas + area

    def test_cached(self, small_instance):
        assert small_instance.typed_arrivals() is small_instance.typed_arrivals()
        assert small_instance.arrival_stream() is small_instance.arrival_stream()

    def test_polar_fast_path_matches_explicit_stream(
        self, small_instance, small_guide
    ):
        """The cached-typing fast path and the per-event fallback agree."""
        fast = run_polar(small_instance, small_guide, seed=5)
        slow = run_polar(
            small_instance,
            small_guide,
            stream=list(small_instance.arrival_stream()),
            seed=5,
        )
        assert fast.matching.pairs() == slow.matching.pairs()

    def test_polar_op_fast_path_matches_explicit_stream(
        self, small_instance, small_guide
    ):
        fast = run_polar_op(small_instance, small_guide, seed=5)
        slow = run_polar_op(
            small_instance,
            small_guide,
            stream=list(small_instance.arrival_stream()),
            seed=5,
        )
        assert fast.matching.pairs() == slow.matching.pairs()


class TestCliJobs:
    def test_parser_accepts_jobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "fig4_workers", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_default_serial(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "fig4_workers"])
        assert args.jobs == 1

    def test_registry_declares_jobs_support(self):
        from repro.experiments.registry import EXPERIMENTS

        sweeps = {
            experiment_id
            for experiment_id, spec in EXPERIMENTS.items()
            if spec.supports_jobs
        }
        assert sweeps == {
            "fig4_workers", "fig4_tasks", "fig4_deadline", "fig4_grids",
            "fig5_slots", "fig5_scalability", "fig5_beijing", "fig5_hangzhou",
            "fig6_mu", "fig6_sigma", "fig6_mean", "fig6_cov",
        }


class TestTypedArrivalsValidation:
    def test_mutated_out_of_bounds_entity_still_raises(self):
        """The vectorized pass keeps the scalar paths' refusal to
        mis-bin data appended after construction-time validation."""
        from repro.errors import GridError, TimelineError
        from repro.model.entities import Worker
        from repro.model.instance import Instance
        from repro.spatial.geometry import Point
        from repro.spatial.grid import Grid
        from repro.spatial.timeslots import Timeline
        from repro.spatial.travel import TravelModel

        def fresh():
            return Instance(
                workers=[Worker(id=0, location=Point(1.0, 1.0), start=5.0, duration=10.0)],
                tasks=[],
                grid=Grid.square(4),
                timeline=Timeline(4, 30.0),
                travel=TravelModel(1.0),
            )

        outside_grid = fresh()
        outside_grid.workers.append(
            Worker(id=1, location=Point(9.0, 1.0), start=5.0, duration=10.0)
        )
        with pytest.raises(GridError):
            outside_grid.typed_arrivals()

        outside_timeline = fresh()
        outside_timeline.workers.append(
            Worker(id=1, location=Point(1.0, 1.0), start=500.0, duration=10.0)
        )
        with pytest.raises(TimelineError):
            outside_timeline.typed_arrivals()
