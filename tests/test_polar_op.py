"""Tests for repro.core.polar_op (Algorithm 3)."""

import pytest

from repro.core.guide import build_guide
from repro.core.outcome import Decision
from repro.core.polar import run_polar
from repro.core.polar_op import run_polar_op
from repro.errors import ConfigurationError


def _example_guide(example1):
    instance, a, b, module = example1
    guide = build_guide(
        a, b, instance.grid, instance.timeline, instance.travel,
        worker_duration=module.WORKER_DEADLINE,
        task_duration=module.TASK_DEADLINE,
    )
    return instance, guide


class TestExample1:
    def test_matching_size_example6(self, example1):
        instance, guide = _example_guide(example1)
        outcome = run_polar_op(instance, guide, node_choice="round_robin")
        # The paper narrates 6; the exact value depends on which node each
        # object associates with — any tie-break yields 5 or 6, beating
        # POLAR's 4.
        assert outcome.size in (5, 6)

    def test_reuse_recovers_overflow_objects(self, example1):
        instance, guide = _example_guide(example1)
        outcome = run_polar_op(instance, guide, node_choice="round_robin")
        # Unlike POLAR, nothing is ignored: every type here has >= 1 node.
        assert outcome.ignored_workers == 0
        assert outcome.ignored_tasks == 0
        # w3 re-uses Ŵ001 and serves r2 (Example 6).
        assert outcome.matching.task_of(2) == 1

    def test_beats_polar_on_example(self, example1):
        instance, guide = _example_guide(example1)
        polar = run_polar(instance, guide, node_choice="first")
        polar_op = run_polar_op(instance, guide, node_choice="round_robin")
        assert polar_op.size > polar.size


class TestIgnoreSemantics:
    def test_ignores_only_zero_node_types(self, small_instance, small_guide):
        outcome = run_polar_op(small_instance, small_guide)
        for worker in small_instance.workers:
            decision = outcome.worker_decisions[worker.id]
            wtype = small_guide.type_index(
                small_guide.timeline.slot_of(worker.start),
                small_guide.grid.area_of(worker.location),
            )
            if decision.action == Decision.IGNORED:
                assert small_guide.worker_nodes(wtype) == 0
            else:
                assert small_guide.worker_nodes(wtype) > 0


class TestInvariants:
    def test_fewer_ignored_than_polar(self, small_instance, small_guide):
        polar = run_polar(small_instance, small_guide)
        polar_op = run_polar_op(small_instance, small_guide)
        assert polar_op.ignored_workers <= polar.ignored_workers
        assert polar_op.ignored_tasks <= polar.ignored_tasks

    def test_matched_pairs_follow_guide_lanes(self, small_instance, small_guide):
        outcome = run_polar_op(small_instance, small_guide)
        for worker_id, task_id in outcome.matching:
            worker = small_instance.worker(worker_id)
            task = small_instance.task(task_id)
            wtype = small_guide.type_index(
                small_guide.timeline.slot_of(worker.start),
                small_guide.grid.area_of(worker.location),
            )
            ttype = small_guide.type_index(
                small_guide.timeline.slot_of(task.start),
                small_guide.grid.area_of(task.location),
            )
            assert small_guide.lane_flow.get((wtype, ttype), 0) > 0

    def test_deterministic_given_seed(self, small_instance, small_guide):
        a = run_polar_op(small_instance, small_guide, node_choice="random", seed=3)
        b = run_polar_op(small_instance, small_guide, node_choice="random", seed=3)
        assert a.matching.pairs() == b.matching.pairs()

    def test_round_robin_beats_random_here(self, small_instance, small_guide):
        """Round-robin covers distinct nodes first, so it should not lose
        to the analysed uniform-random policy on a typical instance."""
        random_choice = run_polar_op(small_instance, small_guide, node_choice="random")
        round_robin = run_polar_op(small_instance, small_guide, node_choice="round_robin")
        assert round_robin.size >= random_choice.size

    def test_unknown_node_choice(self, small_instance, small_guide):
        with pytest.raises(ConfigurationError):
            run_polar_op(small_instance, small_guide, node_choice="mystery")

    def test_every_object_decided(self, small_instance, small_guide):
        outcome = run_polar_op(small_instance, small_guide)
        assert len(outcome.worker_decisions) == small_instance.n_workers
        assert len(outcome.task_decisions) == small_instance.n_tasks
