"""Tests for repro.experiments.measurement and .results."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.measurement import measure
from repro.experiments.results import AlgoCell, SweepResult, TableResult


class TestMeasure:
    def test_returns_value_and_time(self):
        run = measure(lambda: sum(range(1000)), measure_memory=False)
        assert run.value == sum(range(1000))
        assert run.seconds >= 0
        assert run.peak_mb is None

    def test_memory_probe(self):
        run = measure(lambda: [0] * 100_000, measure_memory=True)
        assert run.peak_mb is not None
        assert run.peak_mb > 0.1

    def test_cpu_time_recorded(self):
        run = measure(lambda: sum(range(200_000)), measure_memory=False)
        assert run.cpu_seconds >= 0
        # A pure-compute call's CPU time tracks its wall time loosely.
        assert run.cpu_seconds <= run.seconds * 10 + 0.1


class TestSweepResult:
    def _sweep(self):
        sweep = SweepResult(experiment_id="fig_test", x_label="x")
        sweep.add_point(1.0, {"A": AlgoCell(10, 0.5, 1.0), "B": AlgoCell(5, 0.2, None)})
        sweep.add_point(2.0, {"A": AlgoCell(20, 0.6, 1.1), "B": AlgoCell(9, 0.3, None)})
        return sweep

    def test_series(self):
        sweep = self._sweep()
        assert sweep.series("A", "size") == [10, 20]
        assert sweep.series("B", "seconds") == [0.2, 0.3]
        assert sweep.series("B", "peak_mb") == [None, None]

    def test_unknown_lookup(self):
        sweep = self._sweep()
        with pytest.raises(ExperimentError):
            sweep.series("C", "size")
        with pytest.raises(ExperimentError):
            sweep.series("A", "latency")

    def test_algorithm_mismatch_rejected(self):
        sweep = self._sweep()
        with pytest.raises(ExperimentError):
            sweep.add_point(3.0, {"A": AlgoCell(1, 0.1, None)})

    def test_json_roundtrip(self):
        sweep = self._sweep()
        sweep.notes["scale"] = "0.5"
        restored = SweepResult.from_json(sweep.to_json())
        assert restored.experiment_id == "fig_test"
        assert restored.x_values == [1.0, 2.0]
        assert restored.series("A", "size") == [10, 20]
        assert restored.notes["scale"] == "0.5"

    def test_from_json_rejects_table(self):
        table = TableResult(experiment_id="t")
        with pytest.raises(ExperimentError):
            SweepResult.from_json(table.to_json())

    def test_cpu_seconds_roundtrip_and_legacy_payloads(self):
        sweep = SweepResult(experiment_id="cpu", x_label="x")
        sweep.add_point(1.0, {"A": AlgoCell(10, 0.5, None, cpu_seconds=0.4)})
        restored = SweepResult.from_json(sweep.to_json())
        assert restored.series("A", "cpu_seconds") == [0.4]
        # Archives written before cpu_seconds existed still load.
        import json

        payload = json.loads(sweep.to_json())
        del payload["cells"]["A"][0]["cpu_seconds"]
        legacy = SweepResult.from_json(json.dumps(payload))
        assert legacy.series("A", "cpu_seconds") == [None]


class TestTableResult:
    def test_set_get_grows_grid(self):
        table = TableResult(experiment_id="t")
        table.set("row1", "col1", 1.5)
        table.set("row2", "col2", 2.5)
        assert table.get("row1", "col1") == 1.5
        assert table.get("row1", "col2") is None
        assert table.get("row2", "col2") == 2.5

    def test_unknown_cell(self):
        table = TableResult(experiment_id="t")
        with pytest.raises(ExperimentError):
            table.get("nope", "nope")

    def test_json_roundtrip(self):
        table = TableResult(experiment_id="t")
        table.set("r", "c", 3.0)
        table.notes["k"] = "v"
        restored = TableResult.from_json(table.to_json())
        assert restored.get("r", "c") == 3.0
        assert restored.notes["k"] == "v"

    def test_from_json_rejects_sweep(self):
        sweep = SweepResult(experiment_id="s", x_label="x")
        with pytest.raises(ExperimentError):
            TableResult.from_json(sweep.to_json())
