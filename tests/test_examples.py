"""The example scripts are part of the public surface: they must run.

The fast walkthrough is executed end to end and its paper-matching
numbers asserted; the longer examples are imported and their helpers
exercised at reduced size.
"""

import importlib

import pytest


class TestExample1:
    def test_paper_numbers(self, example1, capsys):
        _instance, _a, _b, module = example1
        module.main()
        out = capsys.readouterr().out
        assert "SimpleGreedy: matched=2" in out
        assert "POLAR: matched=4" in out
        assert "OPT: matched=6" in out
        assert "|E*| = 5" in out

    def test_instance_is_consistent(self, example1):
        instance, a, b, _module = example1
        assert instance.n_workers == 7
        assert instance.n_tasks == 6
        assert a.sum() == 5 and b.sum() == 5


class TestOtherExamplesImportable:
    @pytest.mark.parametrize(
        "module_name",
        ["quickstart", "taxi_day_dispatch", "prediction_comparison"],
    )
    def test_importable_with_main(self, module_name):
        module = importlib.import_module(module_name)
        assert callable(module.main)
