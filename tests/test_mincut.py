"""Tests for repro.graph.mincut (the Lemma 2 construction)."""

import pytest

from repro.errors import FlowError
from repro.graph.maxflow import dinic
from repro.graph.mincut import residual_min_cut
from repro.graph.network import FlowNetwork


def _bottleneck_network():
    network = FlowNetwork(4)
    network.add_edge(0, 1, 10)
    network.add_edge(1, 2, 3)  # the bottleneck
    network.add_edge(2, 3, 10)
    return network


class TestResidualMinCut:
    def test_requires_max_flow_first(self):
        network = _bottleneck_network()
        with pytest.raises(FlowError):
            residual_min_cut(network, 0, 3)

    def test_cut_matches_bottleneck(self):
        network = _bottleneck_network()
        value = dinic(network, 0, 3)
        cut = residual_min_cut(network, 0, 3)
        assert value == 3
        assert cut.capacity == 3
        assert cut.source_side == {0, 1}
        assert cut.sink_side == {2, 3}
        assert len(cut.cut_edges) == 1

    def test_zero_flow_cut(self):
        network = FlowNetwork(3)
        network.add_edge(1, 2, 5)  # source disconnected
        assert dinic(network, 0, 2) == 0
        cut = residual_min_cut(network, 0, 2)
        assert cut.capacity == 0
        assert cut.source_side == {0}

    def test_partition_is_complete(self):
        network = _bottleneck_network()
        dinic(network, 0, 3)
        cut = residual_min_cut(network, 0, 3)
        assert cut.source_side | cut.sink_side == set(range(network.n))
        assert not cut.source_side & cut.sink_side
