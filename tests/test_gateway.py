"""Tests for repro.serving.shard and repro.serving.gateway."""

import asyncio
import json

import pytest

from repro.core.engine import GreedyMatcher, PolarMatcher
from repro.errors import ConfigurationError, GatewayError
from repro.model.entities import Task, Worker
from repro.model.events import TASK, WORKER, Arrival
from repro.serving.gateway import Gateway, render_prometheus
from repro.serving.replay import arrival_to_record
from repro.serving.session import MatchingSession
from repro.serving.shard import Shard, ShardRouter, SpatialHashRing
from repro.spatial.geometry import Point


def _greedy_factory(instance):
    return lambda shard: GreedyMatcher(instance.travel, indexed=False)


async def _start_queue_gateway(instance, **kwargs):
    gateway = Gateway(instance.grid, _greedy_factory(instance), **kwargs)
    await gateway.start()
    return gateway


def _offline_outcome(instance):
    session = MatchingSession(GreedyMatcher(instance.travel, indexed=False))
    session.begin()
    for event in instance.arrival_stream():
        session.push(event)
    return session.finish()


def _arrival(ident, kind, x, y, start, duration=200.0):
    cls = Worker if kind == WORKER else Task
    entity = cls(id=ident, location=Point(x, y), start=start, duration=duration)
    return Arrival(time=start, seq=ident, kind=kind, entity=entity)


class TestSpatialHashRing:
    def test_deterministic_across_instances(self):
        a = SpatialHashRing(4)
        b = SpatialHashRing(4)
        assert [a.shard_of(k) for k in range(500)] == [
            b.shard_of(k) for k in range(500)
        ]

    def test_covers_all_shards(self):
        ring = SpatialHashRing(4)
        owners = {ring.shard_of(k) for k in range(1000)}
        assert owners == {0, 1, 2, 3}

    def test_consistent_remap_is_partial(self):
        """Growing 4 -> 5 shards must remap only a minority of keys —
        the consistent-hashing property that makes live resharding a
        migration, not a reshuffle."""
        before = SpatialHashRing(4)
        after = SpatialHashRing(5)
        keys = range(2000)
        moved = sum(1 for k in keys if before.shard_of(k) != after.shard_of(k))
        assert 0 < moved < len(list(keys)) // 2

    def test_single_shard_routes_everything_to_zero(self):
        ring = SpatialHashRing(1)
        assert {ring.shard_of(k) for k in range(100)} == {0}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SpatialHashRing(0)
        with pytest.raises(ConfigurationError):
            SpatialHashRing(2, replicas=0)


class TestShardRouter:
    def test_routes_by_cell(self, small_instance):
        router = ShardRouter(small_instance.grid, 3)
        for event in small_instance.arrival_stream()[:50]:
            area = small_instance.grid.area_of(event.entity.location)
            assert router.shard_of(event) == router.shard_of_cell(area)
            assert 0 <= router.shard_of(event) < 3

    def test_cell_cache_is_stable(self, small_instance):
        router = ShardRouter(small_instance.grid, 3)
        first = router.shard_of_cell(7)
        assert router.shard_of_cell(7) == first


class TestShard:
    def test_empty_shard_finishes_cleanly(self, small_instance):
        shard = Shard(0, GreedyMatcher(small_instance.travel))
        outcome = shard.finish()
        assert outcome.matching.size == 0
        assert shard.arrivals == 0

    def test_finish_is_idempotent(self, small_instance):
        shard = Shard(0, GreedyMatcher(small_instance.travel))
        shard.push(small_instance.arrival_stream()[0])
        first = shard.finish()
        assert shard.finish() is first
        assert shard.finished


class TestGatewayQueueIngest:
    def test_single_shard_bit_identical_to_offline_session(self, small_instance):
        """Acceptance: one shard == the offline MatchingSession, bit for
        bit (matchings, decisions, counters)."""

        async def run():
            gateway = await _start_queue_gateway(small_instance, n_shards=1)
            for event in small_instance.arrival_stream():
                await gateway.submit(event)
            await gateway.drain()
            return gateway.shard_outcomes()[0]

        outcome = asyncio.run(run())
        offline = _offline_outcome(small_instance)
        assert outcome.matching.pairs() == offline.matching.pairs()
        assert outcome.worker_decisions == offline.worker_decisions
        assert outcome.task_decisions == offline.task_decisions
        assert outcome.ignored_workers == offline.ignored_workers
        assert outcome.ignored_tasks == offline.ignored_tasks

    def test_multi_shard_partitions_the_stream(self, small_instance):
        async def run():
            gateway = await _start_queue_gateway(small_instance, n_shards=4)
            for event in small_instance.arrival_stream():
                await gateway.submit(event)
            snapshot = await gateway.drain()
            return gateway, snapshot

        gateway, snapshot = asyncio.run(run())
        n = len(small_instance.arrival_stream())
        assert snapshot.arrivals == n
        assert sum(row["arrivals"] for row in snapshot.shards) == n
        assert snapshot.matched == sum(row["matched"] for row in snapshot.shards)
        # Every pair matched within one shard: ids never repeat across shards.
        worker_ids = [
            w for o in gateway.shard_outcomes() for w, _t in o.matching.pairs()
        ]
        assert len(worker_ids) == len(set(worker_ids))

    def test_push_after_drain_raises(self, small_instance):
        async def run():
            gateway = await _start_queue_gateway(small_instance)
            event = small_instance.arrival_stream()[0]
            await gateway.submit(event)
            await gateway.drain()
            with pytest.raises(GatewayError):
                await gateway.submit(event)
            with pytest.raises(GatewayError):
                gateway.offer(event)
            return gateway

        gateway = asyncio.run(run())
        assert gateway.rejected == 2
        assert gateway.snapshot().state == "closed"

    def test_empty_gateway_drains_cleanly(self, small_instance):
        async def run():
            gateway = await _start_queue_gateway(small_instance, n_shards=3)
            return await gateway.drain()

        snapshot = asyncio.run(run())
        assert snapshot.arrivals == 0
        assert snapshot.matched == 0
        assert len(snapshot.shards) == 3

    def test_drain_is_idempotent(self, small_instance):
        async def run():
            gateway = await _start_queue_gateway(small_instance)
            first = await gateway.drain()
            second = await gateway.drain()
            third = await gateway.close()
            return first, second, third

        first, second, third = asyncio.run(run())
        assert first is second is third

    def test_offer_hits_backpressure_limit(self, small_instance):
        """offer() refuses once the bounded queue is full (the dispatcher
        cannot run between synchronous offers)."""

        async def run():
            gateway = await _start_queue_gateway(small_instance, queue_size=4)
            events = small_instance.arrival_stream()
            accepted = [gateway.offer(event) for event in events[:10]]
            refused_at = accepted.index(False)
            rejected = gateway.backpressure_rejected
            await gateway.drain()
            return refused_at, rejected

        refused_at, rejected = asyncio.run(run())
        assert refused_at == 4
        assert rejected == 6

    def test_refused_offer_does_not_stamp_stream_order(self, small_instance):
        """A rejected offer must leave the out_of_order/_last_time
        accounting untouched — only ingested arrivals count."""

        async def run():
            gateway = await _start_queue_gateway(small_instance, queue_size=1)
            late = _arrival(0, WORKER, 1.0, 1.0, start=500.0)
            early = _arrival(1, TASK, 1.0, 1.0, start=100.0)
            assert gateway.offer(late)          # fills the queue
            assert not gateway.offer(_arrival(2, WORKER, 1.0, 1.0, start=900.0))
            # The refused t=900 arrival must not make t=100 out of order
            # relative to it; only the accepted t=500 one does.
            await gateway.submit(early)
            return await gateway.drain()

        snapshot = asyncio.run(run())
        assert snapshot.out_of_order == 1
        assert snapshot.arrivals == 2

    def test_start_rolls_back_on_partial_bind_failure(self, small_instance):
        """A failed listener bind must leak neither the dispatcher task
        nor already-bound listeners, and the gateway stays startable."""

        async def run():
            blocker = await _start_queue_gateway(small_instance)
            # no sockets on blocker; grab a port with a plain server
            probe = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await probe.start(port=0)
            taken = probe.tcp_port
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            with pytest.raises(OSError):
                await gateway.start(port=taken)
            assert gateway.tcp_port is None
            await gateway.start(port=0)  # retry succeeds after rollback
            snapshot = await gateway.close()
            await probe.close()
            await blocker.close()
            return snapshot

        assert asyncio.run(run()).state == "closed"

    def test_submit_before_start_raises(self, small_instance):
        gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
        with pytest.raises(GatewayError):
            gateway.offer(small_instance.arrival_stream()[0])

    def test_out_of_order_arrivals_are_counted(self, small_instance):
        async def run():
            gateway = await _start_queue_gateway(small_instance)
            await gateway.submit(_arrival(0, WORKER, 1.0, 1.0, start=100.0))
            await gateway.submit(_arrival(0, TASK, 1.0, 1.0, start=50.0))
            return await gateway.drain()

        snapshot = asyncio.run(run())
        assert snapshot.out_of_order == 1
        assert snapshot.arrivals == 2

    def test_rejects_bad_queue_size(self, small_instance):
        with pytest.raises(GatewayError):
            Gateway(small_instance.grid, _greedy_factory(small_instance),
                    queue_size=0)


async def _send_lines(port, lines):
    """Send raw lines to the ingest socket; one response line each."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    replies = []
    for line in lines:
        writer.write(line.rstrip(b"\n") + b"\n")
        await writer.drain()
        replies.append(json.loads(await reader.readline()))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return replies


class TestGatewaySocketIngest:
    def test_socket_stream_matches_offline_totals(self, small_instance):
        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=0)
            lines = [
                json.dumps(arrival_to_record(event)).encode()
                for event in small_instance.arrival_stream()
            ]
            replies = await _send_lines(gateway.tcp_port, lines)
            snapshot = await gateway.close()
            return replies, snapshot

        replies, snapshot = asyncio.run(scenario())
        offline = _offline_outcome(small_instance)
        assert snapshot.arrivals == len(small_instance.arrival_stream())
        assert snapshot.matched == offline.matching.size
        assert all("error" not in reply for reply in replies)
        assert {reply["decision"] for reply in replies} <= {
            "assigned", "stay", "wait", "dispatched", "ignored"
        }

    def test_malformed_lines_are_counted_and_survive(self, small_instance):
        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=0)
            good = json.dumps(
                arrival_to_record(small_instance.arrival_stream()[0])
            ).encode()
            replies = await _send_lines(
                gateway.tcp_port,
                [
                    b"{not json",                        # invalid JSON
                    b'["not", "an", "object"]',          # not a dict
                    b'{"kind": "drone", "id": 1}',       # unknown kind
                    b'{"kind": "task", "id": 1}',        # missing fields
                    json.dumps(
                        {"kind": "worker", "id": 9, "x": 1e9, "y": 1e9,
                         "start": 0.0, "duration": 5.0}
                    ).encode(),                          # off-grid location
                    good,                                # still serving
                ],
            )
            snapshot = await gateway.close()
            return replies, snapshot

        replies, snapshot = asyncio.run(scenario())
        assert all("error" in reply for reply in replies[:5])
        assert "error" not in replies[5]
        assert snapshot.malformed == 5
        assert snapshot.arrivals == 1

    def test_config_and_snapshot_and_drain_records(self, small_instance):
        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=0)
            event = small_instance.arrival_stream()[0]
            replies = await _send_lines(
                gateway.tcp_port,
                [
                    b'{"kind": "config", "nx": 10}',
                    json.dumps(arrival_to_record(event)).encode(),
                    b'{"kind": "snapshot"}',
                    b'{"kind": "drain"}',
                    json.dumps(arrival_to_record(event)).encode(),
                ],
            )
            await gateway.close()
            return replies

        replies = asyncio.run(scenario())
        assert replies[0] == {"kind": "config", "ok": True}
        assert replies[1]["kind"] == "worker" or replies[1]["kind"] == "task"
        assert replies[2]["kind"] == "snapshot"
        assert replies[2]["state"] == "serving"
        assert replies[3]["kind"] == "snapshot"
        assert replies[3]["state"] == "closed"
        assert replies[3]["arrivals"] == 1
        assert "error" in replies[4]  # arrival after drain is refused

    def test_poisoned_arrival_does_not_kill_the_dispatcher(
        self, small_instance, small_guide
    ):
        """An in-bounds location with an out-of-horizon timestamp passes
        ingest validation but blows up inside a typed matcher
        (Timeline.slot_of).  The dispatcher must answer with an error
        line and keep serving — one poisoned event hanging every
        connection is the failure mode this guards."""

        async def scenario():
            gateway = Gateway(
                small_instance.grid, lambda shard: PolarMatcher(small_guide)
            )
            await gateway.start(port=0)
            poisoned = json.dumps(
                {"kind": "worker", "id": 77, "x": 1.0, "y": 1.0,
                 "start": 1e9, "duration": 5.0}
            ).encode()
            good = json.dumps(
                arrival_to_record(small_instance.arrival_stream()[0])
            ).encode()
            replies = await _send_lines(gateway.tcp_port, [poisoned, good])
            snapshot = await gateway.close()
            return replies, snapshot

        replies, snapshot = asyncio.run(scenario())
        assert "error" in replies[0]
        assert "rejected by shard" in replies[0]["error"]
        assert "error" not in replies[1]  # the gateway is still serving
        assert snapshot.malformed == 1
        assert snapshot.arrivals == 1
        assert snapshot.state == "closed"  # drain still completes

    def test_replies_keep_send_order_around_errors(self, small_instance):
        """Error lines travel through the dispatcher queue, so reply k
        always answers send k even when malformed lines interleave with
        queued arrivals (the loadgen pairs latencies by position)."""

        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=0)
            events = small_instance.arrival_stream()[:6]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            # One burst: valid, valid, malformed, valid — no reads between
            # sends, so the acks are still queued when the bad line lands.
            for index, event in enumerate(events):
                writer.write(json.dumps(arrival_to_record(event)).encode() + b"\n")
                if index == 3:
                    writer.write(b"{broken\n")
            await writer.drain()
            replies = [json.loads(await reader.readline()) for _ in range(7)]
            writer.close()
            await gateway.close()
            return events, replies

        events, replies = asyncio.run(scenario())
        # Replies 0..3 answer the first four arrivals, reply 4 is the
        # malformed line's error, replies 5..6 the remaining arrivals.
        for position, event in list(enumerate(events[:4])) + [
            (5, events[4]), (6, events[5])
        ]:
            assert replies[position].get("id") == event.entity.id, replies
            assert replies[position].get("kind") == event.kind
        assert "error" in replies[4]

    def test_close_completes_with_lingering_connection(self, small_instance):
        """close() must not wait for idle clients to hang up: Python
        3.12's Server.wait_closed() blocks on live connection handlers,
        so the gateway closes their transports itself."""

        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            event = small_instance.arrival_stream()[0]
            writer.write(json.dumps(arrival_to_record(event)).encode() + b"\n")
            await writer.drain()
            await reader.readline()  # its ack
            # The client stays connected; close() must still return.
            snapshot = await asyncio.wait_for(gateway.close(), timeout=5.0)
            remainder = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            return snapshot, remainder

        snapshot, remainder = asyncio.run(scenario())
        assert snapshot.state == "closed"
        assert remainder == b""  # the server hung up on us, not vice versa

    def test_stale_unix_socket_does_not_block_restart(self, small_instance, tmp_path):
        """A socket file left by a crashed run must not block restart
        (asyncio unlinks pre-existing socket paths before binding)."""
        import socket as socket_module

        socket_path = str(tmp_path / "crashed.sock")
        # Simulate a crash: bind a socket and abandon the file.
        stale = socket_module.socket(socket_module.AF_UNIX)
        stale.bind(socket_path)
        stale.close()  # closed without unlink — the path remains

        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=None, unix_path=socket_path)
            return await gateway.close()

        assert asyncio.run(scenario()).state == "closed"

    def test_unix_socket_is_unlinked_on_close(self, small_instance, tmp_path):
        socket_path = str(tmp_path / "stale.sock")

        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=None, unix_path=socket_path)
            await gateway.close()
            # A second gateway must be able to reuse the same path.
            rebound = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await rebound.start(port=None, unix_path=socket_path)
            await rebound.close()

        asyncio.run(scenario())
        import os

        assert not os.path.exists(socket_path)

    def test_unix_socket_ingest(self, small_instance, tmp_path):
        socket_path = str(tmp_path / "gw.sock")

        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=None, unix_path=socket_path)
            reader, writer = await asyncio.open_unix_connection(socket_path)
            event = small_instance.arrival_stream()[0]
            writer.write(json.dumps(arrival_to_record(event)).encode() + b"\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            snapshot = await gateway.close()
            return reply, snapshot

        reply, snapshot = asyncio.run(scenario())
        assert "error" not in reply
        assert snapshot.arrivals == 1


async def _http_get(port, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _sep, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body.decode()


class TestMetricsEndpoint:
    def test_metrics_and_snapshot_and_healthz(self, small_instance):
        async def scenario():
            gateway = Gateway(
                small_instance.grid, _greedy_factory(small_instance), n_shards=2
            )
            await gateway.start(metrics_port=0)
            for event in small_instance.arrival_stream()[:40]:
                await gateway.submit(event)
            # Let the dispatcher catch up before scraping.
            while gateway.processed < 40:
                await asyncio.sleep(0.01)
            metrics = await _http_get(gateway.metrics_port, "/metrics")
            snapshot = await _http_get(gateway.metrics_port, "/snapshot")
            health = await _http_get(gateway.metrics_port, "/healthz")
            missing = await _http_get(gateway.metrics_port, "/nope")
            post = await _http_get(gateway.metrics_port, "/metrics", method="POST")
            await gateway.close()
            return metrics, snapshot, health, missing, post

        metrics, snapshot, health, missing, post = asyncio.run(scenario())
        assert metrics[0] == 200
        assert "ftoa_gateway_arrivals_total 40" in metrics[1]
        assert 'ftoa_shard_arrivals_total{shard="0"}' in metrics[1]
        assert snapshot[0] == 200
        payload = json.loads(snapshot[1])
        assert payload["arrivals"] == 40
        assert payload["n_shards"] == 2
        assert health == (200, "serving\n")
        assert missing[0] == 404
        assert post[0] == 405

    def test_render_prometheus_shape(self, small_instance):
        async def scenario():
            gateway = await _start_queue_gateway(small_instance)
            return await gateway.drain()

        text = render_prometheus(asyncio.run(scenario()))
        assert text.endswith("\n")
        assert "# TYPE ftoa_gateway_matched_total counter" in text
        assert "ftoa_gateway_up 0" in text  # closed after drain

    def test_snapshot_as_dict_roundtrips_json(self, small_instance):
        async def scenario():
            gateway = await _start_queue_gateway(small_instance)
            return await gateway.drain()

        payload = asyncio.run(scenario()).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["kind"] == "snapshot"


class TestGatewayChurn:
    """Churn records through the gateway: routing, acks, counters."""

    def test_churn_events_route_to_owning_shard_and_ack(self, small_instance):
        from repro.streams.churn import ChurnConfig

        stream = small_instance.churn_stream(
            ChurnConfig(departure_rate=0.2, move_rate=0.1, seed=1)
        )

        async def scenario():
            gateway = Gateway(
                small_instance.grid, _greedy_factory(small_instance), n_shards=3
            )
            await gateway.start(port=0)
            from repro.serving.replay import event_to_record

            lines = [json.dumps(event_to_record(event)).encode() for event in stream]
            replies = await _send_lines(gateway.tcp_port, lines)
            snapshot = await gateway.close()
            return replies, snapshot

        replies, snapshot = asyncio.run(scenario())
        churn_replies = [r for r in replies if r.get("kind") in ("departure", "move")]
        assert churn_replies, "expected churn acks"
        assert all("error" not in reply for reply in replies)
        for reply in churn_replies:
            assert reply["side"] in (WORKER, TASK)
            assert "decision" in reply and "shard" in reply
        from repro.model.events import Arrival as _Arrival

        n_arrivals = sum(isinstance(e, _Arrival) for e in stream)
        # A move whose new location hashes to a foreign shard migrates:
        # the object re-arrives there, so shard arrival totals count it
        # once per hosting shard.
        assert snapshot.arrivals == n_arrivals + snapshot.migrations
        assert snapshot.ingested == len(stream)
        assert snapshot.departed > 0

    def test_single_shard_churn_gateway_matches_offline_session(self, small_instance):
        from repro.streams.churn import ChurnConfig

        stream = small_instance.churn_stream(
            ChurnConfig(departure_rate=0.25, move_rate=0.1, seed=3)
        )
        offline = MatchingSession(GreedyMatcher(small_instance.travel, indexed=False))
        offline.begin()
        for event in stream:
            offline.push(event)
        reference = offline.finish()

        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start()
            for event in stream:
                await gateway.submit(event)
            snapshot = await gateway.drain()
            return gateway.shard_outcomes()[0], snapshot

        outcome, snapshot = asyncio.run(scenario())
        assert outcome.matching.pairs() == reference.matching.pairs()
        assert outcome.worker_decisions == reference.worker_decisions
        assert outcome.task_decisions == reference.task_decisions
        assert outcome.departed_workers == reference.departed_workers
        assert outcome.departed_tasks == reference.departed_tasks
        assert outcome.moves == reference.moves
        assert snapshot.departed == reference.departed_workers + reference.departed_tasks
        assert snapshot.moves == reference.moves

    def test_churn_for_unknown_object_is_malformed(self, small_instance):
        async def scenario():
            gateway = Gateway(small_instance.grid, _greedy_factory(small_instance))
            await gateway.start(port=0)
            replies = await _send_lines(
                gateway.tcp_port,
                [b'{"kind": "departure", "side": "worker", "id": 424242, "time": 1.0}'],
            )
            snapshot = await gateway.close()
            return replies, snapshot

        replies, snapshot = asyncio.run(scenario())
        assert "error" in replies[0]
        assert "never saw it arrive" in replies[0]["error"]
        assert snapshot.malformed == 1

    def test_submit_rejects_unknown_churn_object(self, small_instance):
        from repro.model.events import Departure

        async def scenario():
            gateway = await _start_queue_gateway(small_instance)
            with pytest.raises(GatewayError):
                await gateway.submit(
                    Departure(time=1.0, seq=0, kind=WORKER, object_id=999999)
                )
            await gateway.drain()

        asyncio.run(scenario())

    def test_snapshot_dict_carries_churn_counters(self, small_instance):
        async def scenario():
            gateway = await _start_queue_gateway(small_instance)
            return await gateway.drain()

        payload = asyncio.run(scenario()).as_dict()
        assert payload["departed"] == 0
        assert payload["moves"] == 0
        assert payload["slow_consumer_drops"] == 0

    def test_prometheus_renders_churn_gauges(self, small_instance):
        async def scenario():
            gateway = await _start_queue_gateway(small_instance)
            return await gateway.drain()

        text = render_prometheus(asyncio.run(scenario()))
        assert "ftoa_gateway_departed_total" in text
        assert "ftoa_gateway_moves_total" in text
        assert "ftoa_gateway_slow_consumer_drops_total" in text


class TestAckChannel:
    """The per-connection buffered ack writer (gateway hardening)."""

    def test_slow_reader_does_not_block_other_connections(self, small_instance):
        """A client that never reads its acks must not stall acks for a
        well-behaved client on another connection."""

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                ack_queue_size=8,
            )
            await gateway.start(port=0)
            events = small_instance.arrival_stream()
            # The slow reader: sends many events, never reads a byte.
            slow_reader, slow_writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            for event in events[:200]:
                slow_writer.write(
                    json.dumps(arrival_to_record(event)).encode() + b"\n"
                )
            await slow_writer.drain()
            # The good citizen on its own connection still gets acks.
            replies = await _send_lines(
                gateway.tcp_port,
                [json.dumps(arrival_to_record(events[200])).encode()],
            )
            # Wait for the dispatcher to work through the backlog.
            while gateway.processed + gateway.malformed < 201:
                await asyncio.sleep(0.01)
            snapshot_live = gateway.snapshot()
            slow_writer.close()
            await gateway.close()
            return replies, snapshot_live

        replies, snapshot = asyncio.run(scenario())
        assert "error" not in replies[0]
        assert snapshot.slow_consumer_drops >= 1

    def test_fast_clients_never_dropped(self, small_instance):
        """Loadgen-style read-as-you-go clients keep every ack."""

        async def scenario():
            from repro.serving.loadgen import run_loadgen

            gateway = Gateway(
                small_instance.grid, _greedy_factory(small_instance)
            )
            await gateway.start(port=0)
            report = await run_loadgen(
                small_instance.arrival_stream(), port=gateway.tcp_port
            )
            snapshot = await gateway.close()
            return report, snapshot

        report, snapshot = asyncio.run(scenario())
        assert report.acked == len(small_instance.arrival_stream())
        assert snapshot.slow_consumer_drops == 0

    def test_rejects_bad_ack_queue_size(self, small_instance):
        with pytest.raises(GatewayError):
            Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                ack_queue_size=0,
            )


class TestObjectShardRegistry:
    """The churn-routing registry tracks accepted, live objects only."""

    def test_refused_offer_leaves_no_phantom_registration(self, small_instance):
        from repro.model.events import Departure

        events = small_instance.arrival_stream()

        async def scenario():
            gateway = await _start_queue_gateway(small_instance, queue_size=1)
            assert gateway.offer(events[0]) is True
            refused = events[1]
            assert gateway.offer(refused) is False  # queue full
            # Churn for the never-admitted object must be unknown.
            with pytest.raises(GatewayError, match="never saw it arrive"):
                await gateway.submit(
                    Departure(
                        time=refused.time + 1.0,
                        seq=0,
                        kind=refused.kind,
                        object_id=refused.entity.id,
                    )
                )
            await gateway.drain()

        asyncio.run(scenario())

    def test_departure_prunes_the_registry(self, small_instance):
        from repro.model.events import Departure

        event = small_instance.arrival_stream()[0]

        async def scenario():
            gateway = await _start_queue_gateway(small_instance)
            await gateway.submit(event)
            departure = Departure(
                time=event.time + 1.0, seq=1, kind=event.kind,
                object_id=event.entity.id,
            )
            await gateway.submit(departure)
            # Let the dispatcher process both events.
            while gateway.processed + gateway.malformed < 2:
                await asyncio.sleep(0.01)
            # The departed object is gone from the registry: further
            # churn for it is rejected as unknown.
            with pytest.raises(GatewayError, match="never saw it arrive"):
                await gateway.submit(
                    Departure(
                        time=event.time + 2.0, seq=2, kind=event.kind,
                        object_id=event.entity.id,
                    )
                )
            await gateway.drain()

        asyncio.run(scenario())
