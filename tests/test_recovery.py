"""Tests for the self-healing worker pool.

Covers the fault-plan grammar (repro.serving.faults), checkpointed
crash recovery and its headline invariant (a worker SIGKILLed
mid-stream yields a final matching bit-identical to the crash-free
run), torn/corrupt/dropped-frame recovery, heartbeat-driven hang
detection, restart-cap exhaustion into degraded mode (reject and
reroute), the recovery metrics surfaced through /snapshot and
Prometheus, the shared-secret auth handshake, and the IPC edge cases
the recovery path leans on.
"""

import asyncio
import json
import os
import signal

import pytest

from repro.core.engine import GreedyMatcher
from repro.errors import ConfigurationError, GatewayError
from repro.serving import ipc, workers
from repro.serving.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serving.gateway import Gateway, render_prometheus
from repro.serving.loadgen import run_loadgen
from repro.serving.replay import event_to_record
from repro.serving.shard import SpatialHashRing
from repro.serving.workers import ShardOutcome
from repro.streams.churn import ChurnConfig

# Recovery should be exercised, not waited for: restart with tight
# backoff so every test completes in interactive time.
_FAST_RESTART = {"restart_backoff": 0.01, "restart_backoff_cap": 0.05}


def _greedy_factory(instance):
    return lambda shard: GreedyMatcher(instance.travel, indexed=False)


async def _drive(instance, events, backend, n_shards, **kwargs):
    gateway = Gateway(
        instance.grid,
        _greedy_factory(instance),
        n_shards=n_shards,
        backend=backend,
        **kwargs,
    )
    await gateway.start()
    for event in events:
        await gateway.submit(event)
    snapshot = await gateway.drain()
    outcomes = gateway.shard_outcomes()
    await gateway.close()
    return snapshot, outcomes


def _assert_bit_identical(outcomes_a, outcomes_b):
    assert len(outcomes_a) == len(outcomes_b)
    for a, b in zip(outcomes_a, outcomes_b):
        assert a.matching.pairs() == b.matching.pairs()
        assert a.worker_decisions == b.worker_decisions
        assert a.task_decisions == b.task_decisions
        assert a.ignored_workers == b.ignored_workers
        assert a.ignored_tasks == b.ignored_tasks
        assert a.departed_workers == b.departed_workers
        assert a.departed_tasks == b.departed_tasks
        assert a.moves == b.moves


class TestFaultPlanGrammar:
    def test_parse_single_spec(self):
        plan = FaultPlan.parse("kill:shard=0,at=50")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.action == "kill"
        assert spec.shard == 0
        assert spec.at == 50
        assert spec.sticky is False

    def test_parse_multiple_specs_and_sticky(self):
        plan = FaultPlan.parse("kill:shard=1,at=5,sticky; delay:at=3,seconds=0.2")
        assert len(plan.specs) == 2
        assert plan.specs[0].sticky is True
        assert plan.specs[1].action == "delay"
        assert plan.specs[1].seconds == pytest.approx(0.2)
        assert plan.specs[1].shard is None
        assert bool(plan)
        assert "kill" in plan.describe() and "delay" in plan.describe()

    def test_parse_rejects_unknown_action(self):
        with pytest.raises(GatewayError, match="unknown fault action"):
            FaultPlan.parse("explode:at=1")

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(GatewayError):
            FaultPlan.parse("kill:when=1")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(GatewayError):
            FaultPlan.parse("kill:at=banana")

    def test_parse_rejects_empty(self):
        with pytest.raises(GatewayError):
            FaultPlan.parse("  ")
        assert not FaultPlan(())

    def test_spec_validation(self):
        with pytest.raises(GatewayError):
            FaultSpec(action="kill", at=0)
        with pytest.raises(GatewayError):
            FaultSpec(action="hang", seconds=-1.0)

    def test_for_shard_filters_and_incarnations(self):
        plan = FaultPlan.parse("kill:shard=1,at=5,sticky; hang:shard=1,at=9; kill:shard=0,at=2")
        assert [s.action for s in plan.for_shard(0)] == ["kill"]
        # Incarnation 0 gets every matching spec; replacements only the
        # sticky ones (a one-shot fault must not re-fire after restart).
        assert [s.action for s in plan.for_shard(1, incarnation=0)] == ["kill", "hang"]
        assert [s.action for s in plan.for_shard(1, incarnation=1)] == ["kill"]
        assert plan.for_shard(2) == ()

    def test_injector_fires_at_event_count(self):
        injector = FaultInjector(FaultPlan.parse("drop:at=3").specs)
        assert injector.next_event_fault() is None
        assert injector.next_event_fault() is None
        fired = injector.next_event_fault()
        assert fired is not None and fired.action == "drop"
        assert injector.next_event_fault() is None


class TestCrashRecovery:
    """The headline invariant: SIGKILL mid-stream, bit-identical drain."""

    def test_kill_mid_stream_bit_identical(self, small_instance):
        events = small_instance.arrival_stream()
        snap_ref, out_ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance,
                events,
                "process",
                3,
                fault_plan=FaultPlan.parse("kill:shard=1,at=25"),
                worker_config=dict(_FAST_RESTART),
            )
        )
        _assert_bit_identical(out_ref, out)
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 1
        assert snap.malformed == 0
        assert snap.matched == snap_ref.matched

    def test_kill_mid_churned_stream_bit_identical(self, small_instance):
        stream = small_instance.churn_stream(
            ChurnConfig(departure_rate=0.2, move_rate=0.1, seed=1)
        )
        snap_ref, out_ref = asyncio.run(_drive(small_instance, stream, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance,
                stream,
                "process",
                3,
                fault_plan=FaultPlan.parse("kill:shard=1,at=20"),
                worker_config=dict(_FAST_RESTART, checkpoint_every=16),
            )
        )
        _assert_bit_identical(out_ref, out)
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 1
        assert snap.malformed == 0
        assert snap.departed == snap_ref.departed
        assert snap.moves == snap_ref.moves

    @pytest.mark.parametrize("action", ["torn", "corrupt", "drop"])
    def test_stream_corruption_recovers_bit_identical(self, small_instance, action):
        """A torn, corrupt or silently dropped reply frame is detected
        (EOF, undecodable payload, or seq desync) and healed the same
        way a crash is."""
        events = small_instance.arrival_stream()
        _snap_ref, out_ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance,
                events,
                "process",
                3,
                fault_plan=FaultPlan.parse(f"{action}:shard=1,at=10"),
                worker_config=dict(_FAST_RESTART, checkpoint_every=16),
            )
        )
        _assert_bit_identical(out_ref, out)
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 1
        assert snap.malformed == 0

    def test_checkpoint_truncation_parity(self, small_instance):
        """A late kill with a small checkpoint interval replays from the
        last checkpoint (a short journal), not from scratch — and still
        lands bit-identical."""
        events = small_instance.arrival_stream()
        _snap_ref, out_ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance,
                events,
                "process",
                3,
                fault_plan=FaultPlan.parse("kill:shard=1,at=60"),
                worker_config=dict(_FAST_RESTART, checkpoint_every=8),
            )
        )
        _assert_bit_identical(out_ref, out)
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 1

    def test_kill_every_shard_once(self, small_instance):
        events = small_instance.arrival_stream()
        _snap_ref, out_ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance,
                events,
                "process",
                3,
                fault_plan=FaultPlan.parse(
                    "kill:shard=0,at=15; kill:shard=1,at=25; kill:shard=2,at=35"
                ),
                worker_config=dict(_FAST_RESTART),
            )
        )
        _assert_bit_identical(out_ref, out)
        assert snap.worker_crashes == 3
        assert snap.worker_restarts == 3
        assert snap.malformed == 0


class TestHangRecovery:
    def test_hung_worker_heartbeat_recovery(self, small_instance):
        """A hang fault stalls the worker without killing it; the
        heartbeat monitor must diagnose the stall and recover it."""
        events = small_instance.arrival_stream()
        _snap_ref, out_ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance,
                events,
                "process",
                3,
                fault_plan=FaultPlan.parse("hang:shard=1,at=10"),
                worker_config=dict(
                    _FAST_RESTART,
                    heartbeat_interval=0.05,
                    heartbeat_timeout=0.5,
                ),
            )
        )
        _assert_bit_identical(out_ref, out)
        # On a starved host the monitor may diagnose a busy-but-slow
        # worker too, costing a benign extra restart — the invariants
        # are "recovered" and "bit-identical", not an exact count.
        assert snap.worker_crashes >= 1
        assert snap.worker_restarts == snap.worker_crashes
        assert snap.malformed == 0

    def test_sigstopped_worker_heartbeat_recovery(self, small_instance):
        """An externally SIGSTOPped worker (no fault plan involved) is
        indistinguishable from a hang: pending requests plus a silent
        pipe.  The monitor's SIGKILL lands even on a stopped process."""
        events = small_instance.arrival_stream()
        _snap_ref, out_ref = asyncio.run(_drive(small_instance, events, "inline", 3))

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=3,
                backend="process",
                worker_config=dict(
                    _FAST_RESTART,
                    heartbeat_interval=0.05,
                    heartbeat_timeout=0.5,
                ),
            )
            await gateway.start()
            for event in events[:50]:
                await gateway.submit(event)
            os.kill(gateway._backend.handles[1].process.pid, signal.SIGSTOP)
            for event in events[50:]:
                await gateway.submit(event)
            snapshot = await gateway.drain()
            outcomes = gateway.shard_outcomes()
            await gateway.close()
            return snapshot, outcomes

        snap, out = asyncio.run(asyncio.wait_for(scenario(), 60))
        _assert_bit_identical(out_ref, out)
        # See test_hung_worker_heartbeat_recovery on the >= — a starved
        # host can add a benign extra restart.
        assert snap.worker_crashes >= 1
        assert snap.worker_restarts == snap.worker_crashes
        assert snap.malformed == 0

    def test_delay_fault_does_not_trigger_recovery(self, small_instance):
        """A transient slowdown shorter than the heartbeat timeout must
        ride out without a restart — supervision reacts to silence, not
        to latency."""
        events = small_instance.arrival_stream()
        _snap_ref, out_ref = asyncio.run(_drive(small_instance, events, "inline", 3))
        snap, out = asyncio.run(
            _drive(
                small_instance,
                events,
                "process",
                3,
                fault_plan=FaultPlan.parse("delay:shard=1,at=10,seconds=0.2"),
                worker_config=dict(
                    heartbeat_interval=0.1,
                    heartbeat_timeout=5.0,
                ),
            )
        )
        _assert_bit_identical(out_ref, out)
        assert snap.worker_crashes == 0
        assert snap.worker_restarts == 0


class TestDegradedModes:
    def test_restart_cap_exhaustion_degrades_cleanly(self, small_instance):
        """A restart storm past the cap flips the shard to degraded:
        error acks (never a hang), a structured ShardOutcome, health
        rows and recovery counters in the snapshot and Prometheus."""
        events = small_instance.arrival_stream()

        async def scenario():
            return await _drive(
                small_instance,
                events,
                "process",
                3,
                fault_plan=FaultPlan.parse("kill:shard=1,at=5,sticky"),
                max_worker_restarts=2,
                worker_config=dict(_FAST_RESTART),
            )

        snap, out = asyncio.run(asyncio.wait_for(scenario(), 60))
        assert snap.worker_crashes == 3  # initial + 2 doomed replacements
        assert snap.worker_restarts == 2
        assert snap.malformed > 0  # shard 1's events got error acks
        assert [row["health"] for row in snap.shards] == [
            "healthy", "degraded", "healthy",
        ]
        outcome = out[1]
        assert isinstance(outcome, ShardOutcome)
        assert outcome.state == "degraded"
        assert outcome.restarts == 2
        assert "crashed" in outcome.error
        assert "degraded" in outcome.summary()
        # The healthy shards still produce real outcomes.
        assert not isinstance(out[0], ShardOutcome)
        assert not isinstance(out[2], ShardOutcome)
        # Snapshot dict + Prometheus exposition carry the new counters.
        as_dict = snap.as_dict()
        assert as_dict["worker_restarts"] == 2
        assert "auth_failures" in as_dict
        text = render_prometheus(snap)
        assert "ftoa_gateway_worker_restarts_total 2" in text
        assert 'ftoa_shard_up{shard="1"} 0' in text
        assert 'ftoa_shard_up{shard="0"} 1' in text

    def test_zero_restart_budget_degrades_immediately(self, small_instance):
        events = small_instance.arrival_stream()
        snap, out = asyncio.run(
            asyncio.wait_for(
                _drive(
                    small_instance,
                    events,
                    "process",
                    3,
                    fault_plan=FaultPlan.parse("kill:shard=1,at=5"),
                    max_worker_restarts=0,
                ),
                60,
            )
        )
        assert snap.worker_crashes == 1
        assert snap.worker_restarts == 0
        assert isinstance(out[1], ShardOutcome)
        assert out[1].restarts == 0

    def test_reroute_serves_new_arrivals_after_degrade(self, small_instance):
        """In reroute mode a degraded shard retires from the ring, so
        arrivals submitted *after* the degrade remap to survivors and
        ack cleanly."""
        events = small_instance.arrival_stream()

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=3,
                backend="process",
                fault_plan=FaultPlan.parse("kill:shard=1,at=3,sticky"),
                max_worker_restarts=1,
                degraded_mode="reroute",
                worker_config=dict(_FAST_RESTART),
            )
            await gateway.start()
            for event in events[:100]:
                await gateway.submit(event)
            while not gateway.degraded_shards:
                await asyncio.sleep(0.02)
            while gateway.processed + gateway.malformed < gateway.ingested:
                await asyncio.sleep(0.02)
            errors_at_degrade = gateway.malformed
            for event in events[100:]:
                await gateway.submit(event)
            snapshot = await gateway.drain()
            await gateway.close()
            return errors_at_degrade, snapshot

        errors_at_degrade, snap = asyncio.run(asyncio.wait_for(scenario(), 60))
        assert snap.shards[1]["health"] == "degraded"
        # Everything after the retire remapped — no new error acks.
        assert snap.malformed == errors_at_degrade
        assert snap.shards[1]["arrivals"] == 0
        assert snap.shards[0]["arrivals"] + snap.shards[2]["arrivals"] > 0

    def test_ring_refuses_to_retire_last_shard(self):
        ring = SpatialHashRing(2)
        ring.retire(0)
        ring.retire(0)  # idempotent
        assert ring.retired == frozenset({0})
        with pytest.raises(ConfigurationError, match="last live shard"):
            ring.retire(1)

    def test_invalid_degraded_mode_rejected(self, small_instance):
        with pytest.raises(GatewayError, match="degraded_mode"):
            Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                backend="process",
                degraded_mode="panic",
            )

    def test_fault_plan_requires_process_backend(self, small_instance):
        with pytest.raises(GatewayError):
            Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                backend="inline",
                fault_plan=FaultPlan.parse("kill:at=1"),
            )


class TestAuthHandshake:
    def test_loadgen_happy_path(self, small_instance):
        events = small_instance.arrival_stream()[:50]

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                auth_token="sesame",
            )
            await gateway.start(port=0)
            report = await run_loadgen(
                events, port=gateway.tcp_port, auth_token="sesame", drain=True
            )
            failures = gateway.auth_failures
            await gateway.close()
            return report, failures

        report, failures = asyncio.run(scenario())
        assert report.errors == 0
        assert report.acked == len(events)
        assert failures == 0
        assert report.snapshot["auth_failures"] == 0

    def test_wrong_token_gets_error_line_and_close(self, small_instance):
        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                auth_token="sesame",
            )
            await gateway.start(port=0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            writer.write(b'{"kind": "auth", "token": "wrong"}\n')
            await writer.drain()
            error_line = json.loads(await asyncio.wait_for(reader.readline(), 10))
            eof = await asyncio.wait_for(reader.readline(), 10)
            writer.close()
            snapshot = await gateway.drain()
            await gateway.close()
            return error_line, eof, snapshot

        error_line, eof, snapshot = asyncio.run(scenario())
        assert "authentication failed" in error_line["error"]
        assert eof == b""  # gateway closed the connection
        assert snapshot.auth_failures == 1
        assert snapshot.as_dict()["auth_failures"] == 1

    def test_data_line_before_auth_is_rejected(self, small_instance):
        """A client that skips the handshake and streams events must be
        turned away before any event is ingested."""
        event = small_instance.arrival_stream()[0]

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                auth_token="sesame",
            )
            await gateway.start(port=0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            writer.write(json.dumps(event_to_record(event)).encode() + b"\n")
            await writer.drain()
            error_line = json.loads(await asyncio.wait_for(reader.readline(), 10))
            eof = await asyncio.wait_for(reader.readline(), 10)
            writer.close()
            ingested = gateway.ingested
            failures = gateway.auth_failures
            await gateway.close()
            return error_line, eof, ingested, failures

        error_line, eof, ingested, failures = asyncio.run(scenario())
        assert "authentication failed" in error_line["error"]
        assert eof == b""
        assert ingested == 0
        assert failures == 1

    def test_loadgen_raises_on_refused_handshake(self, small_instance):
        events = small_instance.arrival_stream()[:5]

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                auth_token="sesame",
            )
            await gateway.start(port=0)
            try:
                with pytest.raises(GatewayError, match="auth handshake"):
                    await run_loadgen(
                        events, port=gateway.tcp_port, auth_token="wrong"
                    )
            finally:
                await gateway.close()

        asyncio.run(scenario())

    def test_unauthenticated_gateway_ignores_handshake_config(self, small_instance):
        """No --auth-token, no handshake: the seed protocol is intact."""
        events = small_instance.arrival_stream()[:20]

        async def scenario():
            gateway = Gateway(
                small_instance.grid, _greedy_factory(small_instance), n_shards=2
            )
            await gateway.start(port=0)
            report = await run_loadgen(events, port=gateway.tcp_port)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert report.acked == len(events)


class TestIpcEdgeCases:
    def test_partial_frame_then_eof(self):
        """A frame torn mid-write (the producer died) surfaces as EOF,
        which the supervisor treats as a crash — never a parse of the
        half frame."""
        frame = ipc.encode_frame((ipc.ACK, 3, {"decision": "assigned"}))

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(frame[: len(frame) - 3])
            reader.feed_eof()
            with pytest.raises(EOFError):
                await ipc.read_frame(reader)

        asyncio.run(scenario())

    def test_decode_frame_rejects_garbage(self):
        with pytest.raises(GatewayError, match="corrupt"):
            ipc.decode_frame(b"\xffnot a pickle\xff")

    def test_oversized_reply_degrades_to_nack(self):
        """A reply too large to frame must not kill the worker: the
        requester gets a NACK naming the limit instead of a torn pipe."""

        class StubChannel:
            def __init__(self):
                self.sent = []

            def send(self, tag, seq, payload):
                if tag == ipc.ACK:
                    raise GatewayError("frame of 999 bytes exceeds the limit")
                self.sent.append((tag, seq, payload))

        stub = StubChannel()
        workers._send_reply(stub, ipc.ACK, 7, "enormous payload")
        assert len(stub.sent) == 1
        tag, seq, payload = stub.sent[0]
        assert tag == ipc.NACK
        assert seq == 7
        assert "frame limit" in payload

    def test_raw_frame_roundtrip(self):
        framed = ipc.raw_frame(b"abc")
        assert int.from_bytes(framed[:4], "big") == 3
        assert framed[4:] == b"abc"
