"""Tests for repro.analysis.audit (movement-semantics replay)."""

import pytest

from repro.analysis.audit import audit_outcome
from repro.core.outcome import AssignmentOutcome, Decision
from repro.errors import SimulationError
from repro.model.entities import Task, Worker
from repro.model.instance import Instance
from repro.model.matching import Matching
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel


def _instance(workers, tasks):
    return Instance(
        workers=workers,
        tasks=tasks,
        grid=Grid.square(2, cell_size=10.0),
        timeline=Timeline(2, 50.0),
        travel=TravelModel(1.0),
    )


def _outcome(pairs, worker_decisions=None):
    outcome = AssignmentOutcome(algorithm="test", matching=Matching())
    for worker_id, task_id in pairs:
        outcome.matching.assign(worker_id, task_id)
    if worker_decisions:
        outcome.worker_decisions.update(worker_decisions)
    return outcome


class TestStationaryPairs:
    def test_feasible_pair_passes(self):
        workers = [Worker(id=0, location=Point(1, 1), start=0.0, duration=50.0)]
        tasks = [Task(id=0, location=Point(3, 1), start=5.0, duration=5.0)]
        audit = audit_outcome(_instance(workers, tasks), _outcome([(0, 0)]))
        assert audit.feasible_pairs == 1
        assert audit.violation_rate == 0.0
        assert audit.max_lateness == 0.0

    def test_infeasible_pair_flagged(self):
        workers = [Worker(id=0, location=Point(1, 1), start=0.0, duration=50.0)]
        tasks = [Task(id=0, location=Point(15, 1), start=5.0, duration=5.0)]
        audit = audit_outcome(_instance(workers, tasks), _outcome([(0, 0)]))
        assert audit.feasible_pairs == 0
        assert audit.violations[0][0] == 0
        assert audit.max_lateness == pytest.approx(14.0 - 5.0)


class TestDispatchedPairs:
    def test_pre_positioning_makes_pair_feasible(self):
        """The worker is dispatched at arrival toward the task's area; by
        assignment time it is close enough — staying put would miss."""
        workers = [Worker(id=0, location=Point(1, 1), start=0.0, duration=60.0)]
        tasks = [Task(id=0, location=Point(15, 15), start=16.0, duration=6.0)]
        instance = _instance(workers, tasks)
        target_area = instance.grid.area_of(Point(15, 15))

        stationary = audit_outcome(instance, _outcome([(0, 0)]))
        assert stationary.violation_rate == 1.0

        dispatched = audit_outcome(
            instance,
            _outcome(
                [(0, 0)],
                {0: Decision(Decision.DISPATCHED, target_area=target_area)},
            ),
        )
        assert dispatched.violation_rate == 0.0


class TestErrors:
    def test_unknown_entity(self):
        workers = [Worker(id=0, location=Point(1, 1), start=0.0, duration=50.0)]
        tasks = [Task(id=0, location=Point(3, 1), start=5.0, duration=5.0)]
        with pytest.raises(SimulationError):
            audit_outcome(_instance(workers, tasks), _outcome([(9, 0)]))

    def test_empty_outcome(self):
        workers = [Worker(id=0, location=Point(1, 1), start=0.0, duration=50.0)]
        tasks = [Task(id=0, location=Point(3, 1), start=5.0, duration=5.0)]
        audit = audit_outcome(_instance(workers, tasks), _outcome([]))
        assert audit.total_pairs == 0
        assert audit.violation_rate == 0.0
