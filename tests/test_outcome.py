"""Tests for repro.core.outcome."""

from repro.core.outcome import IGNORED, STAY, WAIT, AssignmentOutcome, Decision
from repro.model.matching import Matching


class TestDecision:
    def test_constants(self):
        assert Decision.ASSIGNED == "assigned"
        assert Decision.DISPATCHED == "dispatched"

    def test_fields(self):
        decision = Decision(Decision.DISPATCHED, target_area=7)
        assert decision.target_area == 7
        assert decision.partner_id is None

    def test_payload_free_singletons(self):
        """The shared no-payload decisions the hot loops reuse."""
        assert STAY == Decision(Decision.STAY)
        assert WAIT == Decision(Decision.WAIT)
        assert IGNORED == Decision(Decision.IGNORED)
        for singleton in (STAY, WAIT, IGNORED):
            assert singleton.target_area is None
            assert singleton.partner_id is None


class TestOutcome:
    def test_size_from_matching(self):
        outcome = AssignmentOutcome(algorithm="x", matching=Matching())
        outcome.matching.assign(1, 2)
        assert outcome.size == 1

    def test_size_extras_override(self):
        outcome = AssignmentOutcome(algorithm="x", matching=Matching())
        outcome.extras["matching_size"] = 42.0
        assert outcome.size == 42

    def test_dispatched_ids_sorted(self):
        outcome = AssignmentOutcome(algorithm="x", matching=Matching())
        outcome.worker_decisions[5] = Decision(Decision.DISPATCHED, target_area=1)
        outcome.worker_decisions[2] = Decision(Decision.DISPATCHED, target_area=3)
        outcome.worker_decisions[9] = Decision(Decision.STAY)
        assert outcome.dispatched_worker_ids() == [2, 5]

    def test_summary_mentions_counts(self):
        outcome = AssignmentOutcome(algorithm="POLAR", matching=Matching())
        outcome.matching.assign(0, 0)
        outcome.ignored_workers = 3
        text = outcome.summary()
        assert "POLAR" in text and "matched=1" in text and "3" in text
