"""Tests for repro.serving.telemetry — stage tracing and histograms.

Covers the log2 bucket math (edges, merge, percentiles, Prometheus text
rendering, the snapshot-diff roundtrip the loadgen uses), the bounded
trace recorder (head/tail wraparound, slow-event retention, Chrome
trace export), the sampling gate, and the headline gate: cross-process
stamp monotonicity on both worker transports, end to end through a real
gateway.
"""

import asyncio
import json
import pickle

import pytest

from repro.core.engine import GreedyMatcher
from repro.core.outcome import Decision
from repro.model.entities import Worker
from repro.model.events import WORKER, Arrival
from repro.serving import ipc, shmring
from repro.serving.gateway import Gateway, render_prometheus
from repro.serving.loadgen import LoadgenReport, _stage_diff
from repro.serving.telemetry import (
    DEFAULT_SAMPLE_EVERY,
    STAGES,
    LatencyHistogram,
    Stamped,
    Stamps,
    Telemetry,
    TraceRecorder,
    bucket_edge_ns,
    bucket_index,
)
from repro.spatial.geometry import Point

needs_shm = pytest.mark.skipif(
    not shmring.shm_available(),
    reason="no shared-memory segments on this host",
)


def _stamps(seq=0, start=1_000, step=1_000):
    """A fully-stamped record: each stage takes ``step`` ns."""
    stamps = Stamps(seq=seq, ingest=start)
    stamps.dispatch = start + step
    stamps.send = start + 2 * step
    stamps.worker_recv = start + 3 * step
    stamps.match_done = start + 4 * step
    stamps.ack_write = start + 5 * step
    return stamps


class TestBucketMath:
    def test_log2_edges(self):
        # Bucket i holds (2^(i-1), 2^i]: each edge is the last value of
        # its own bucket and edge+1 starts the next.
        assert bucket_index(0) == 0
        assert bucket_index(1) == 0
        assert bucket_index(2) == 1
        assert bucket_index(3) == 2
        assert bucket_index(4) == 2
        assert bucket_index(5) == 3
        for i in range(1, 40):
            edge = bucket_edge_ns(i)
            assert bucket_index(edge) == i
            assert bucket_index(edge + 1) == i + 1

    def test_pathological_duration_clamps_to_top_bucket(self):
        assert bucket_index(2**200) == 63

    def test_record_and_counts(self):
        histogram = LatencyHistogram()
        for ns in (1, 2, 3, 1024, 1025):
            histogram.record(ns)
        assert histogram.count == 5
        assert histogram.sum_ns == 1 + 2 + 3 + 1024 + 1025
        assert histogram.counts[0] == 1  # 1
        assert histogram.counts[1] == 1  # 2
        assert histogram.counts[2] == 1  # 3
        assert histogram.counts[10] == 1  # 1024
        assert histogram.counts[11] == 1  # 1025

    def test_merge_is_a_vector_add(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10)
        a.record(10_000)
        b.record(10)
        b.record(1_000_000)
        a.merge(b)
        assert a.count == 4
        assert a.counts[bucket_index(10)] == 2
        assert a.counts[bucket_index(1_000_000)] == 1
        assert a.sum_ns == 10 + 10_000 + 10 + 1_000_000

    def test_percentile_empty_and_interpolated(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) == 0.0
        for _ in range(100):
            histogram.record(3_000)  # bucket 12: (2048, 4096]
        p50 = histogram.percentile(0.50)
        assert 2048.0 <= p50 <= 4096.0
        # All mass in one bucket: quantiles are ordered within the band.
        assert histogram.percentile(0.1) <= p50 <= histogram.percentile(0.99)

    def test_as_dict_from_dict_roundtrip(self):
        histogram = LatencyHistogram()
        for ns in (500, 7_000, 7_000, 3_000_000):
            histogram.record(ns)
        rebuilt = LatencyHistogram.from_dict(
            json.loads(json.dumps(histogram.as_dict()))
        )
        assert rebuilt.counts == histogram.counts
        assert rebuilt.count == histogram.count

    def test_subtract_diffs_and_clamps(self):
        before, after = LatencyHistogram(), LatencyHistogram()
        before.record(1_000)
        after.record(1_000)
        after.record(1_000)
        after.record(64_000)
        diff = after.subtract(before)
        assert diff.count == 2
        assert diff.counts[bucket_index(1_000)] == 1
        assert diff.counts[bucket_index(64_000)] == 1
        # A reset source (before > after) clamps instead of going negative.
        clamped = before.subtract(after)
        assert clamped.counts[bucket_index(1_000)] == 0
        assert clamped.sum_ns == 0

    def test_prometheus_rendering(self):
        histogram = LatencyHistogram()
        histogram.record(100)  # below the rendered slice
        histogram.record(10_000)  # 2^14 bucket
        histogram.record(2**40)  # above the rendered slice -> +Inf only
        lines = histogram.prometheus_lines('stage="match",shard="0"')
        assert all("ftoa_gateway_stage_duration_seconds" in l for l in lines)
        bucket_lines = [l for l in lines if "_bucket" in l]
        # Cumulative counts never decrease across increasing le edges.
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)
        # The sub-slice count folds into the first rendered bucket.
        assert counts[0] == 1
        assert bucket_lines[-1].endswith("3")  # +Inf sees all three
        assert 'le="+Inf"' in bucket_lines[-1]
        assert any(l.startswith("ftoa_gateway_stage_duration_seconds_sum{") for l in lines)
        assert lines[-1] == (
            'ftoa_gateway_stage_duration_seconds_count'
            '{stage="match",shard="0"} 3'
        )


class TestStamps:
    def test_stage_durations_cover_the_pipeline(self):
        stamps = _stamps(step=1_000)
        durations = dict(stamps.stage_durations())
        assert set(durations) == set(STAGES)
        assert all(d == 1_000 for d in durations.values())
        assert stamps.total_ns() == 5_000

    def test_partial_stamps_yield_partial_stages(self):
        stamps = Stamps(seq=1, ingest=100)
        stamps.dispatch = 250
        assert dict(stamps.stage_durations()) == {"ingest": 150}
        assert stamps.total_ns() is None

    def test_same_tick_inversion_clamps_to_zero(self):
        stamps = Stamps(seq=1, ingest=100)
        stamps.dispatch = 99
        assert dict(stamps.stage_durations()) == {"ingest": 0}

    def test_stamped_pickles_across_the_fork_boundary(self):
        carrier = Stamped({"payload": True}, _stamps(seq=9))
        clone = pickle.loads(pickle.dumps(carrier))
        assert type(clone) is Stamped
        assert clone.value == {"payload": True}
        assert clone.stamps.seq == 9
        assert clone.stamps.ack_write == carrier.stamps.ack_write

    def test_stamped_escapes_both_shm_packers(self):
        """The shm side channel: a Stamped carrier must fail the
        fixed-slot codec so it rides the ESC pipe, keeping the 88-byte
        slot layout untouched."""
        entity = Worker(id=1, location=Point(0.5, 0.5), start=0.0, duration=9.0)
        event = Arrival(time=0.0, seq=1, kind=WORKER, entity=entity)
        buf = bytearray(shmring.SLOT_SIZE)
        assert shmring.pack_request(buf, 0, ipc.EVENT, 1, event) is True
        stamped = Stamped(event, _stamps())
        assert shmring.pack_request(buf, 0, ipc.EVENT, 1, stamped) is False
        decision = Decision(action=Decision.WAIT)
        assert shmring.pack_reply(buf, 0, ipc.ACK, 1, decision) is True
        assert (
            shmring.pack_reply(buf, 0, ipc.ACK, 1, Stamped(decision, _stamps()))
            is False
        )


class TestTraceRecorder:
    def test_head_then_tail_wraparound(self):
        recorder = TraceRecorder(head=2, tail=3, slow_threshold_ns=10**12)
        for i in range(10):
            recorder.record(0, _stamps(seq=i, start=i * 10_000))
        entries = recorder.entries()
        assert recorder.seen == 10
        # First 2 (head) plus last 3 (tail ring), oldest first.
        assert [stamps.seq for _shard, stamps in entries] == [0, 1, 7, 8, 9]

    def test_slow_events_survive_the_tail_wrap(self):
        recorder = TraceRecorder(head=1, tail=2, slow_threshold_ns=1_000_000)
        recorder.record(0, _stamps(seq=0, step=10))  # head, fast
        recorder.record(0, _stamps(seq=1, step=300_000))  # slow: 1.5 ms
        for i in range(2, 8):
            recorder.record(0, _stamps(seq=i, start=i * 10_000_000, step=10))
        assert recorder.slow_events == 1
        seqs = [stamps.seq for _shard, stamps in recorder.entries()]
        assert 1 in seqs  # retained although the tail wrapped past it
        assert seqs == sorted(seqs)

    def test_slow_entry_still_in_tail_is_not_duplicated(self):
        recorder = TraceRecorder(head=1, tail=8, slow_threshold_ns=1_000_000)
        recorder.record(0, _stamps(seq=0, step=10))
        recorder.record(0, _stamps(seq=1, step=300_000))
        assert [s.seq for _shard, s in recorder.entries()] == [0, 1]

    def test_chrome_trace_shape(self):
        recorder = TraceRecorder()
        recorder.record(0, _stamps(seq=3, start=2_000_000, step=1_000))
        recorder.record(1, _stamps(seq=4, start=9_000_000, step=2_000))
        document = recorder.chrome_trace()
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in metadata} >= {
            "ftoa-gateway", "shard 0", "shard 1",
        }
        assert {e["name"] for e in spans} == set(STAGES)
        first = next(e for e in spans if e["args"]["seq"] == 3)
        assert first["ts"] == 2_000_000 / 1e3  # monotonic ns -> µs
        assert first["dur"] == 1.0
        assert document["otherData"]["sampled_events"] == 2
        # The document is what /trace serves: it must be JSON-clean.
        json.dumps(document)


class TestTelemetrySampling:
    def test_first_event_always_sampled_then_one_in_n(self):
        telemetry = Telemetry(sample_every=3)
        picks = [telemetry.begin(seq) is not None for seq in range(7)]
        assert picks == [True, False, False, True, False, False, True]

    def test_sample_every_zero_disables(self):
        telemetry = Telemetry(sample_every=0)
        assert telemetry.enabled is False
        assert telemetry.begin(1) is None
        assert telemetry.histograms == {}

    def test_default_rate(self):
        assert Telemetry().sample_every == DEFAULT_SAMPLE_EVERY

    def test_record_feeds_histograms_and_summary(self):
        telemetry = Telemetry(sample_every=1, n_shards=2)
        telemetry.record(0, _stamps(seq=0, step=1_000))
        telemetry.record(1, _stamps(seq=1, step=2_000))
        assert telemetry.sampled == 2
        assert telemetry.histograms[("match", 0)].count == 1
        assert telemetry.histograms[("match", 1)].count == 1
        summary = telemetry.stage_summary()
        assert summary["sampled"] == 2
        assert summary["sample_every"] == 1
        for stage in STAGES:
            assert summary[stage]["count"] == 2

    def test_prometheus_lines_expose_full_series_grid(self):
        telemetry = Telemetry(sample_every=1, n_shards=2)
        text = "\n".join(telemetry.prometheus_lines())
        assert "# TYPE ftoa_gateway_stage_duration_seconds histogram" in text
        for stage in STAGES:
            for shard in (0, 1):
                assert f'stage="{stage}",shard="{shard}"' in text
        assert "ftoa_gateway_telemetry_sampled_total 0" in text


class TestStageDiff:
    def test_loadgen_diff_and_table(self):
        before_t = Telemetry(sample_every=1)
        after_t = Telemetry(sample_every=1)
        after_t.record(0, _stamps(seq=0, step=5_000))
        before = {"stage_latency": before_t.stage_summary()}
        after = {"stage_latency": after_t.stage_summary()}
        diff = _stage_diff(before, after)
        assert diff is not None
        assert diff["sampled"] == 1
        assert diff["match"]["count"] == 1
        report = LoadgenReport(
            sent=1, acked=1, errors=0, seconds=0.1, arrivals_per_sec=10.0,
            target_rate=None, stage_latency=diff,
        )
        table = report.stage_table()
        assert "match" in table and "p99_ms" in table

    def test_diff_is_none_without_server_telemetry(self):
        assert _stage_diff({}, {}) is None
        assert _stage_diff(None, {"stage_latency": None}) is None
        report = LoadgenReport(
            sent=0, acked=0, errors=0, seconds=0.0, arrivals_per_sec=0.0,
            target_rate=None,
        )
        assert report.stage_table() is None
        assert "stage_latency" not in report.as_dict()


# ---------------------------------------------------------------------- #
# End to end: cross-process stamps on both transports
# ---------------------------------------------------------------------- #

_STAMP_FIELDS = ("ingest", "dispatch", "send", "worker_recv",
                 "match_done", "ack_write")


def _greedy_factory(instance):
    return lambda shard: GreedyMatcher(instance.travel, indexed=False)


async def _drive_sampled(instance, events, backend, transport="pipe"):
    telemetry = Telemetry(sample_every=1, n_shards=2)
    gateway = Gateway(
        instance.grid,
        _greedy_factory(instance),
        n_shards=2,
        backend=backend,
        transport=transport,
        telemetry=telemetry,
    )
    await gateway.start()
    for event in events:
        await gateway.submit(event)
    await gateway.drain()
    await gateway.close()
    return telemetry


def _assert_monotone_complete(telemetry, n_events):
    assert telemetry.sampled == n_events
    entries = telemetry.recorder.entries()
    assert entries
    for _shard, stamps in entries:
        values = [getattr(stamps, field) for field in _STAMP_FIELDS]
        assert None not in values, f"incomplete stamps: seq={stamps.seq}"
        assert values == sorted(values), (
            f"non-monotone stamps for seq={stamps.seq}: {values}"
        )
        assert set(dict(stamps.stage_durations())) == set(STAGES)
    for stage in STAGES:
        per_stage = sum(
            h.count for (s, _shard), h in telemetry.histograms.items()
            if s == stage
        )
        assert per_stage == n_events


class TestCrossProcessStamps:
    def test_inline_backend_stamps_every_stage(self, small_instance):
        events = small_instance.arrival_stream()[:80]
        telemetry = asyncio.run(_drive_sampled(small_instance, events, "inline"))
        _assert_monotone_complete(telemetry, len(events))
        # Inline has no transport hop: send == worker_recv by definition.
        for _shard, stamps in telemetry.recorder.entries():
            assert stamps.send == stamps.worker_recv

    def test_pipe_transport_stamps_are_monotone(self, small_instance):
        events = small_instance.arrival_stream()[:120]
        telemetry = asyncio.run(
            _drive_sampled(small_instance, events, "process", "pipe")
        )
        _assert_monotone_complete(telemetry, len(events))

    @needs_shm
    def test_shm_transport_stamps_are_monotone(self, small_instance):
        events = small_instance.arrival_stream()[:120]
        telemetry = asyncio.run(
            _drive_sampled(small_instance, events, "process", "shm")
        )
        _assert_monotone_complete(telemetry, len(events))

    def test_metrics_and_trace_endpoints(self, small_instance):
        """/metrics exposes the histogram series and /trace serves a
        well-formed Chrome trace for a sampled run."""
        events = small_instance.arrival_stream()[:60]

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                telemetry=Telemetry(sample_every=1, n_shards=2),
            )
            await gateway.start(port=0, metrics_port=0)
            for event in events:
                await gateway.submit(event)
            snapshot = await gateway.drain()
            texts = {}
            for path in ("/metrics", "/trace"):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.metrics_port
                )
                writer.write(
                    f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                texts[path] = raw.partition(b"\r\n\r\n")[2].decode()
            await gateway.close()
            return snapshot, texts

        snapshot, texts = asyncio.run(scenario())
        assert "ftoa_gateway_stage_duration_seconds_bucket" in texts["/metrics"]
        assert 'stage="match",shard="1"' in texts["/metrics"]
        trace = json.loads(texts["/trace"])
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert names == set(STAGES)
        assert snapshot.stage_latency is not None
        assert snapshot.stage_latency["sampled"] == len(events)
        assert snapshot.as_dict()["stage_latency"]["match"]["count"] == len(events)

    def test_loadgen_reports_stage_breakdown(self, small_instance):
        events = small_instance.arrival_stream()[:100]

        async def scenario():
            from repro.serving.loadgen import run_loadgen

            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                telemetry=Telemetry(sample_every=1, n_shards=2),
            )
            await gateway.start(port=0)
            report = await run_loadgen(events, port=gateway.tcp_port)
            await gateway.close()
            return report

        report = asyncio.run(scenario())
        assert report.acked == len(events)
        assert report.stage_latency is not None
        assert report.stage_latency["sampled"] == len(events)
        for stage in STAGES:
            assert report.stage_latency[stage]["count"] == len(events)
        assert "stage" in report.stage_table()
