"""Tests for the GBRT regressor and the numpy MLP."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.gbrt import GradientBoostingRegressor
from repro.prediction.neural import MlpRegressor


def _learnable_data(n=600, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 4))
    y = 3 * x[:, 0] - 2 * x[:, 1] ** 2 + 0.5 * x[:, 2] * x[:, 3]
    return x, y


class TestGradientBoosting:
    def test_beats_mean_baseline(self):
        x, y = _learnable_data()
        model = GradientBoostingRegressor(n_estimators=40, seed=1)
        model.fit(x, y)
        residual = ((model.predict(x) - y) ** 2).mean()
        baseline = ((y.mean() - y) ** 2).mean()
        assert residual < 0.3 * baseline

    def test_more_stages_fit_train_better(self):
        x, y = _learnable_data()
        few = GradientBoostingRegressor(n_estimators=5, subsample=1.0, seed=1).fit(x, y)
        many = GradientBoostingRegressor(n_estimators=60, subsample=1.0, seed=1).fit(x, y)
        assert ((many.predict(x) - y) ** 2).mean() < ((few.predict(x) - y) ** 2).mean()

    def test_deterministic_by_seed(self):
        x, y = _learnable_data(n=200)
        a = GradientBoostingRegressor(seed=5).fit(x, y).predict(x[:10])
        b = GradientBoostingRegressor(seed=5).fit(x, y).predict(x[:10])
        assert (a == b).all()

    def test_row_cap_applies(self):
        x, y = _learnable_data(n=500)
        model = GradientBoostingRegressor(n_estimators=3, max_rows=100, seed=0)
        model.fit(x, y)  # must not blow up; implicitly subsamples
        assert model.predict(x).shape == (500,)

    def test_predict_before_fit(self):
        with pytest.raises(PredictionError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))

    def test_invalid_params(self):
        with pytest.raises(PredictionError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(PredictionError):
            GradientBoostingRegressor(learning_rate=0)
        with pytest.raises(PredictionError):
            GradientBoostingRegressor(subsample=1.5)


class TestMlp:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(500, 3))
        y = 2 * x[:, 0] - x[:, 1] + 0.5
        model = MlpRegressor(hidden=16, epochs=40, seed=2)
        model.fit(x, y)
        residual = ((model.predict(x) - y) ** 2).mean()
        baseline = ((y.mean() - y) ** 2).mean()
        assert residual < 0.1 * baseline

    def test_deterministic_by_seed(self):
        x, y = _learnable_data(n=150)
        a = MlpRegressor(epochs=3, seed=9).fit(x, y).predict(x[:5])
        b = MlpRegressor(epochs=3, seed=9).fit(x, y).predict(x[:5])
        assert np.allclose(a, b)

    def test_constant_feature_no_nan(self):
        x = np.ones((100, 2))
        y = np.full(100, 3.0)
        model = MlpRegressor(epochs=2, seed=0).fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_predict_before_fit(self):
        with pytest.raises(PredictionError):
            MlpRegressor().predict(np.zeros((1, 2)))

    def test_invalid_params(self):
        with pytest.raises(PredictionError):
            MlpRegressor(hidden=0)
