"""Tests for repro.analysis.bounds (Lemma 2's cut bound)."""

import pytest

from repro.analysis.bounds import empirical_opt_gap, guide_cut_bound
from repro.core.opt import run_opt
from repro.errors import ConfigurationError


class TestGuideCutBound:
    def test_cut_capacity_equals_guide_size(self, small_guide):
        bound = guide_cut_bound(small_guide)
        assert bound.cut_capacity == small_guide.matched_pairs
        assert bound.guide_size == small_guide.matched_pairs

    def test_partition_structure(self, small_guide):
        bound = guide_cut_bound(small_guide)
        # Source- and sink-side worker types never overlap.
        assert not bound.source_side_worker_types & bound.sink_side_worker_types
        # Every positive-supply type lands on one side.
        positive = {
            t
            for t in range(small_guide.n_types)
            if small_guide.worker_nodes(t) > 0
        }
        assert positive == bound.source_side_worker_types | bound.sink_side_worker_types

    def test_bound_formula(self, small_guide):
        bound = guide_cut_bound(small_guide)
        assert bound.bound(0.0, 100, 100) == bound.guide_size
        assert bound.bound(0.1, 100, 100) == bound.guide_size + 20.0
        with pytest.raises(ConfigurationError):
            bound.bound(-0.1, 1, 1)

    def test_example1_bound(self, example1):
        from repro.core.guide import build_guide

        instance, a, b, module = example1
        guide = build_guide(
            a, b, instance.grid, instance.timeline, instance.travel,
            module.WORKER_DEADLINE, module.TASK_DEADLINE,
        )
        bound = guide_cut_bound(guide)
        assert bound.guide_size == 5


class TestEmpiricalGap:
    def test_gap_matches_direct_computation(self, small_instance, small_guide):
        gap = empirical_opt_gap(small_instance, small_guide, opt_method="exact")
        optimum = run_opt(small_instance, method="exact").size
        expected = (optimum - small_guide.matched_pairs) / max(optimum, 1)
        assert gap == pytest.approx(expected)

    def test_gap_reasonably_small_with_oracle_prediction(
        self, small_instance, small_guide
    ):
        """With the exact oracle the guide should capture most of OPT —
        Lemma 2's deviation term is the discretisation residue only."""
        gap = empirical_opt_gap(small_instance, small_guide, opt_method="exact")
        assert abs(gap) < 0.5
