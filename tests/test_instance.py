"""Tests for repro.model.instance."""

import numpy as np
import pytest

from repro.errors import InvalidEntityError
from repro.model.entities import Task, Worker
from repro.model.instance import Instance
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel


def _instance(workers=None, tasks=None):
    return Instance(
        workers=workers if workers is not None else [
            Worker(id=0, location=Point(1, 1), start=0.0, duration=5.0),
            Worker(id=1, location=Point(9, 9), start=12.0, duration=5.0),
        ],
        tasks=tasks if tasks is not None else [
            Task(id=0, location=Point(2, 2), start=1.0, duration=5.0),
        ],
        grid=Grid.square(2, cell_size=5.0),
        timeline=Timeline(2, 10.0),
        travel=TravelModel(1.0),
    )


class TestValidation:
    def test_duplicate_worker_ids(self):
        workers = [
            Worker(id=0, location=Point(1, 1), start=0.0, duration=5.0),
            Worker(id=0, location=Point(2, 2), start=0.0, duration=5.0),
        ]
        with pytest.raises(InvalidEntityError):
            _instance(workers=workers)

    def test_out_of_grid_entity(self):
        workers = [Worker(id=0, location=Point(99, 1), start=0.0, duration=5.0)]
        with pytest.raises(InvalidEntityError):
            _instance(workers=workers)

    def test_out_of_timeline_entity(self):
        tasks = [Task(id=0, location=Point(1, 1), start=50.0, duration=5.0)]
        with pytest.raises(InvalidEntityError):
            _instance(tasks=tasks)


class TestLookup:
    def test_sizes(self):
        instance = _instance()
        assert instance.n_workers == 2
        assert instance.n_tasks == 1

    def test_resolution(self):
        instance = _instance()
        assert instance.worker(1).start == 12.0
        assert instance.task(0).duration == 5.0

    def test_unknown_raises(self):
        instance = _instance()
        with pytest.raises(InvalidEntityError):
            instance.worker(99)
        with pytest.raises(InvalidEntityError):
            instance.task(99)

    def test_maps_are_copies(self):
        instance = _instance()
        mapping = instance.worker_map()
        mapping.clear()
        assert instance.n_workers == 2


class TestDiscretisation:
    def test_types(self):
        instance = _instance()
        # worker 0: slot 0, area 0; worker 1: slot 1, area 3.
        assert instance.type_of_worker(instance.worker(0)) == (0, 0)
        assert instance.type_of_worker(instance.worker(1)) == (1, 3)

    def test_count_tensors(self):
        instance = _instance()
        workers = instance.worker_counts()
        tasks = instance.task_counts()
        assert workers.shape == (2, 4)
        assert workers[0, 0] == 1 and workers[1, 3] == 1
        assert workers.sum() == 2
        assert tasks[0, 0] == 1 and tasks.sum() == 1


class TestStream:
    def test_arrival_stream_order(self):
        stream = _instance().arrival_stream()
        assert [event.time for event in stream] == [0.0, 1.0, 12.0]
        assert stream[0].is_worker and stream[1].is_task
