"""Tests for repro.model.entities."""

import pytest

from repro.errors import InvalidEntityError
from repro.model.entities import Task, Worker
from repro.spatial.geometry import Point


class TestWorker:
    def test_deadline(self):
        worker = Worker(id=1, location=Point(0, 0), start=10.0, duration=5.0)
        assert worker.deadline == 15.0

    def test_availability_half_open(self):
        worker = Worker(id=1, location=Point(0, 0), start=10.0, duration=5.0)
        assert not worker.available_at(9.999)
        assert worker.available_at(10.0)
        assert worker.available_at(14.999)
        assert not worker.available_at(15.0)

    def test_invalid_id(self):
        with pytest.raises(InvalidEntityError):
            Worker(id=-1, location=Point(0, 0), start=0.0, duration=1.0)

    def test_invalid_duration(self):
        with pytest.raises(InvalidEntityError):
            Worker(id=0, location=Point(0, 0), start=0.0, duration=0.0)

    def test_invalid_start(self):
        with pytest.raises(InvalidEntityError):
            Worker(id=0, location=Point(0, 0), start=-1.0, duration=1.0)

    def test_frozen(self):
        worker = Worker(id=0, location=Point(0, 0), start=0.0, duration=1.0)
        with pytest.raises(AttributeError):
            worker.start = 5.0

    def test_tags_do_not_affect_equality(self):
        a = Worker(id=0, location=Point(0, 0), start=0.0, duration=1.0, tags={"x": 1})
        b = Worker(id=0, location=Point(0, 0), start=0.0, duration=1.0, tags={"x": 2})
        assert a == b


class TestTask:
    def test_deadline(self):
        task = Task(id=2, location=Point(1, 1), start=3.0, duration=2.0)
        assert task.deadline == 5.0

    def test_expired_at(self):
        task = Task(id=2, location=Point(1, 1), start=3.0, duration=2.0)
        assert not task.expired_at(5.0)
        assert task.expired_at(5.001)

    def test_invalid(self):
        with pytest.raises(InvalidEntityError):
            Task(id=0, location=Point(0, 0), start=0.0, duration=-2.0)
