"""Tests for repro.prediction.base and metrics."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.base import DayContext, DemandHistory, Predictor, clip_counts
from repro.prediction.metrics import error_rate, rmlse, rmsle


def _history(n_days=4, n_slots=3, n_areas=2, fill=1):
    return DemandHistory(
        counts=np.full((n_days, n_slots, n_areas), fill, dtype=np.int64),
        day_of_week=np.arange(n_days) % 7,
        weather=np.zeros((n_days, n_slots), dtype=np.int64),
    )


class TestDemandHistory:
    def test_shapes(self):
        history = _history()
        assert (history.n_days, history.n_slots, history.n_areas) == (4, 3, 2)

    def test_bad_dims(self):
        with pytest.raises(PredictionError):
            DemandHistory(
                counts=np.zeros((3, 2)),
                day_of_week=np.zeros(3),
                weather=np.zeros((3, 2)),
            )

    def test_negative_counts(self):
        with pytest.raises(PredictionError):
            DemandHistory(
                counts=-np.ones((2, 2, 2)),
                day_of_week=np.zeros(2),
                weather=np.zeros((2, 2)),
            )

    def test_mismatched_features(self):
        with pytest.raises(PredictionError):
            DemandHistory(
                counts=np.zeros((2, 2, 2)),
                day_of_week=np.zeros(3),
                weather=np.zeros((2, 2)),
            )

    def test_tail(self):
        history = _history(n_days=5)
        tail = history.tail(2)
        assert tail.n_days == 2
        assert (tail.day_of_week == history.day_of_week[-2:]).all()
        assert history.tail(99).n_days == 5
        with pytest.raises(PredictionError):
            history.tail(0)

    def test_flattened_series(self):
        history = _history()
        flat = history.flattened_series()
        assert flat.shape == (12, 2)


class TestDayContext:
    def test_weekend_flag(self):
        weekday = DayContext(day_of_week=2, weather=np.zeros(3), day_index=10)
        weekend = DayContext(day_of_week=6, weather=np.zeros(3), day_index=10)
        assert not weekday.is_weekend
        assert weekend.is_weekend

    def test_validation(self):
        with pytest.raises(PredictionError):
            DayContext(day_of_week=7, weather=np.zeros(3), day_index=0)
        with pytest.raises(PredictionError):
            DayContext(day_of_week=0, weather=np.zeros((2, 2)), day_index=0)


class _ConstantPredictor(Predictor):
    name = "const"

    def __init__(self, value, shape_override=None):
        super().__init__()
        self.value = value
        self.shape_override = shape_override

    def fit(self, history):
        super().fit(history)

    def _predict(self, context):
        shape = self.shape_override or self._fitted_shape
        return np.full(shape, self.value)


class TestPredictorContract:
    def test_predict_before_fit_raises(self):
        predictor = _ConstantPredictor(1.0)
        with pytest.raises(PredictionError):
            predictor.predict(DayContext(day_of_week=0, weather=np.zeros(3), day_index=0))

    def test_shape_enforced(self):
        predictor = _ConstantPredictor(1.0, shape_override=(2, 2))
        predictor.fit(_history())
        with pytest.raises(PredictionError):
            predictor.predict(DayContext(day_of_week=0, weather=np.zeros(3), day_index=4))

    def test_negative_forecast_clamped(self):
        predictor = _ConstantPredictor(-3.0)
        predictor.fit(_history())
        forecast = predictor.predict(
            DayContext(day_of_week=0, weather=np.zeros(3), day_index=4)
        )
        assert (forecast == 0).all()

    def test_clip_counts_rejects_nan(self):
        with pytest.raises(PredictionError):
            clip_counts(np.array([np.nan]))


class TestMetrics:
    def test_perfect_prediction_is_zero(self):
        actual = np.array([[3.0, 2.0], [1.0, 4.0]])
        assert error_rate(actual, actual) == 0.0
        assert rmsle(actual, actual) == 0.0

    def test_error_rate_hand_computed(self):
        actual = np.array([[4.0, 0.0], [2.0, 2.0]])
        predicted = np.array([[2.0, 2.0], [2.0, 2.0]])
        # slot 0: |4-2| + |0-2| = 4 over 4 -> 1.0; slot 1: 0 over 4 -> 0.
        assert error_rate(actual, predicted) == pytest.approx(0.5)

    def test_rmsle_hand_computed(self):
        actual = np.array([[np.e - 1]])
        predicted = np.array([[0.0]])
        assert rmsle(actual, predicted) == pytest.approx(1.0)

    def test_empty_slots_skipped_in_er(self):
        actual = np.array([[0.0, 0.0], [2.0, 2.0]])
        predicted = np.array([[5.0, 5.0], [2.0, 2.0]])
        assert error_rate(actual, predicted) == pytest.approx(0.0)

    def test_all_empty_raises(self):
        zeros = np.zeros((2, 2))
        with pytest.raises(PredictionError):
            error_rate(zeros, zeros)

    def test_shape_mismatch(self):
        with pytest.raises(PredictionError):
            error_rate(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_negative_rejected(self):
        with pytest.raises(PredictionError):
            rmsle(np.array([[-1.0]]), np.array([[1.0]]))

    def test_rmlse_alias(self):
        assert rmlse is rmsle
