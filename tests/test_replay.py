"""Tests for repro.serving.replay and the dump/replay CLI commands."""

import io
import json

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.serving.replay import (
    arrival_to_record,
    build_self_guide,
    dump_stream,
    load_stream,
    record_to_arrival,
    stream_config,
)


class TestCodec:
    def test_record_roundtrip(self, small_instance):
        stream = small_instance.arrival_stream()
        for arrival in stream[:20]:
            rebuilt = record_to_arrival(arrival_to_record(arrival), seq=arrival.seq)
            assert rebuilt.kind == arrival.kind
            assert rebuilt.entity == arrival.entity

    def test_stream_roundtrip(self, small_instance):
        buffer = io.StringIO()
        header = stream_config(
            small_instance.grid, small_instance.timeline, small_instance.travel
        )
        count = dump_stream(small_instance.arrival_stream(), buffer, config=header)
        assert count == len(small_instance.arrival_stream())
        buffer.seek(0)
        config, events = load_stream(buffer)
        assert config["nx"] == small_instance.grid.nx
        assert config["velocity"] == small_instance.travel.velocity
        assert len(events) == count
        original = small_instance.arrival_stream()
        assert [e.entity for e in events] == [e.entity for e in original]
        assert [e.kind for e in events] == [e.kind for e in original]

    def test_load_skips_blank_and_comment_lines(self):
        text = (
            "# a comment\n"
            "\n"
            '{"kind": "worker", "id": 1, "x": 1.0, "y": 1.0, "start": 0.0, "duration": 5.0}\n'
        )
        config, events = load_stream(io.StringIO(text))
        assert config is None
        assert len(events) == 1
        assert events[0].is_worker

    def test_load_rejects_bad_json(self):
        with pytest.raises(SimulationError):
            load_stream(io.StringIO("{not json\n"))

    def test_load_rejects_unknown_kind(self):
        line = '{"kind": "drone", "id": 1, "x": 0, "y": 0, "start": 0, "duration": 1}\n'
        with pytest.raises(SimulationError):
            load_stream(io.StringIO(line))

    def test_load_rejects_missing_fields(self):
        line = '{"kind": "task", "id": 1}\n'
        with pytest.raises(SimulationError):
            load_stream(io.StringIO(line))

    def test_load_rejects_out_of_order_streams(self):
        lines = (
            '{"kind": "worker", "id": 1, "x": 0, "y": 0, "start": 9.0, "duration": 1}\n'
            '{"kind": "task", "id": 1, "x": 0, "y": 0, "start": 3.0, "duration": 1}\n'
        )
        with pytest.raises(SimulationError):
            load_stream(io.StringIO(lines))

    def test_load_rejects_late_config(self):
        lines = (
            '{"kind": "worker", "id": 1, "x": 0, "y": 0, "start": 0.0, "duration": 1}\n'
            '{"kind": "config", "nx": 5}\n'
        )
        with pytest.raises(SimulationError):
            load_stream(io.StringIO(lines))


class TestSelfGuide:
    def test_self_guide_from_stream(self, small_instance):
        guide = build_self_guide(
            small_instance.arrival_stream(),
            small_instance.grid,
            small_instance.timeline,
            small_instance.travel,
        )
        assert guide.matched_pairs > 0

    def test_self_guide_rejects_empty_stream(self, small_instance):
        with pytest.raises(SimulationError):
            build_self_guide(
                [],
                small_instance.grid,
                small_instance.timeline,
                small_instance.travel,
            )


class TestCliDumpReplay:
    def _dump(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        code = main(
            [
                "dump",
                "--workers", "150",
                "--tasks", "150",
                "--grid-side", "8",
                "--n-slots", "6",
                "--out", str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        return path

    def test_dump_writes_config_and_events(self, tmp_path, capsys):
        path = self._dump(tmp_path, capsys)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "config"
        assert len(lines) == 301
        with open(path) as fp:
            config, events = load_stream(fp)
        assert config is not None
        assert len(events) == 300

    @pytest.mark.parametrize(
        "algorithm", ["greedy", "greedy-indexed", "gr", "tgoa", "polar", "polar-op"]
    )
    def test_replay_all_algorithms(self, tmp_path, capsys, algorithm):
        path = self._dump(tmp_path, capsys)
        code = main(
            ["replay", str(path), "--algorithm", algorithm, "--snapshot-every", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matched=" in out
        assert "arrivals=100" in out

    def test_replay_greedy_variants_agree(self, tmp_path, capsys):
        path = self._dump(tmp_path, capsys)
        sizes = {}
        for algorithm in ("greedy", "greedy-indexed"):
            assert main(["replay", str(path), "--algorithm", algorithm]) == 0
            out = capsys.readouterr().out
            sizes[algorithm] = out.rsplit("matched=", 1)[1].split()[0]
        assert sizes["greedy"] == sizes["greedy-indexed"]

    def test_replay_without_config_record_fails(self, tmp_path, capsys):
        path = tmp_path / "bare.jsonl"
        path.write_text(
            '{"kind": "worker", "id": 1, "x": 0.5, "y": 0.5, "start": 0.0, "duration": 5.0}\n'
        )
        assert main(["replay", str(path)]) == 2
        assert "config record" in capsys.readouterr().err

    def test_replay_malformed_stream_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        assert main(["replay", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err
