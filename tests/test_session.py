"""Tests for repro.serving.session — the streaming session layer."""

import pytest

from repro.core.engine import (
    BatchMatcher,
    GreedyMatcher,
    PolarMatcher,
    PolarOpMatcher,
    TgoaMatcher,
    create_matcher,
)
from repro.core.outcome import Decision
from repro.core.polar import run_polar
from repro.errors import ConfigurationError
from repro.serving.session import (
    InstanceSource,
    IteratorSource,
    MatchingSession,
    SessionSnapshot,
    as_source,
)


def _max_task_duration(instance):
    return max((t.duration for t in instance.tasks), default=0.0)


def _assert_outcomes_identical(a, b):
    assert a.matching.pairs() == b.matching.pairs()
    assert a.worker_decisions == b.worker_decisions
    assert a.task_decisions == b.task_decisions
    assert a.ignored_workers == b.ignored_workers
    assert a.ignored_tasks == b.ignored_tasks
    assert a.extras == b.extras


class TestSources:
    def test_as_source_coerces_instance(self, small_instance):
        source = as_source(small_instance)
        assert isinstance(source, InstanceSource)
        assert source.instance is small_instance

    def test_as_source_coerces_iterable(self, small_instance):
        source = as_source(small_instance.arrival_stream())
        assert isinstance(source, IteratorSource)
        assert len(list(source)) == len(small_instance.arrival_stream())

    def test_as_source_passthrough(self, small_instance):
        source = InstanceSource(small_instance)
        assert as_source(source) is source

    def test_instance_source_stream_override(self, small_instance):
        stream = small_instance.arrival_stream()[:10]
        source = InstanceSource(small_instance, stream=stream)
        assert len(list(source)) == 10


class TestSessionParity:
    """Acceptance: session-driven == legacy run_* for all five, and the
    session works from a bare event iterator with no Instance at all."""

    @pytest.mark.parametrize("algorithm", ["SimpleGreedy", "GR", "POLAR", "POLAR-OP", "TGOA"])
    def test_instance_session_matches_adapter(
        self, small_instance, small_guide, algorithm
    ):
        from repro.core.batch import run_batch
        from repro.core.greedy import run_simple_greedy
        from repro.core.polar_op import run_polar_op
        from repro.core.tgoa import run_tgoa

        legacy = {
            "SimpleGreedy": lambda: run_simple_greedy(small_instance),
            "GR": lambda: run_batch(small_instance),
            "POLAR": lambda: run_polar(small_instance, small_guide),
            "POLAR-OP": lambda: run_polar_op(small_instance, small_guide),
            "TGOA": lambda: run_tgoa(small_instance),
        }[algorithm]()
        matcher = create_matcher(algorithm, small_instance, guide=small_guide)
        outcome = MatchingSession(matcher, InstanceSource(small_instance)).run()
        _assert_outcomes_identical(outcome, legacy)

    @pytest.mark.parametrize("algorithm", ["SimpleGreedy", "GR", "POLAR", "POLAR-OP", "TGOA"])
    def test_bare_iterator_no_instance(self, small_instance, small_guide, algorithm):
        """A generator of arrivals — no pregenerated Instance — produces
        the identical matching."""
        events = small_instance.arrival_stream()
        matchers = {
            "SimpleGreedy": lambda: GreedyMatcher(small_instance.travel),
            "GR": lambda: BatchMatcher(
                small_instance.travel,
                small_instance.grid,
                small_instance.timeline.slot_minutes / 10.0,
            ),
            "POLAR": lambda: PolarMatcher(small_guide),
            "POLAR-OP": lambda: PolarOpMatcher(small_guide),
            "TGOA": lambda: TgoaMatcher(
                small_instance.travel,
                grid=small_instance.grid,
                halfway=len(events) // 2,
            ),
        }
        reference = MatchingSession(
            create_matcher(algorithm, small_instance, guide=small_guide),
            InstanceSource(small_instance),
        ).run()
        live_feed = (event for event in events)  # a one-shot generator
        outcome = MatchingSession(
            matchers[algorithm](), IteratorSource(live_feed)
        ).run()
        assert outcome.matching.pairs() == reference.matching.pairs()

    def test_chunked_fast_path_parity(self, small_instance, small_guide):
        """Snapshot chunking of the bulk typed loop changes nothing."""
        plain = MatchingSession(
            PolarMatcher(small_guide, seed=2), InstanceSource(small_instance)
        ).run()
        chunked = MatchingSession(
            PolarMatcher(small_guide, seed=2),
            InstanceSource(small_instance),
            snapshot_every=97,
        ).run()
        _assert_outcomes_identical(plain, chunked)

    def test_session_is_restartable(self, small_instance, small_guide):
        session = MatchingSession(
            PolarMatcher(small_guide, seed=4), InstanceSource(small_instance)
        )
        first = session.run()
        second = session.run()
        _assert_outcomes_identical(first, second)


class TestSnapshots:
    def test_periodic_snapshots(self, small_instance, small_guide):
        session = MatchingSession(
            PolarMatcher(small_guide),
            InstanceSource(small_instance),
            snapshot_every=100,
        )
        session.run()
        n = len(small_instance.arrival_stream())
        # n is a multiple of 100 and POLAR's finish() commits nothing
        # new, so the final snapshot dedupes against the last periodic
        # one: exactly one snapshot per full chunk.
        assert n % 100 == 0
        assert len(session.snapshots) == n // 100
        assert all(isinstance(s, SessionSnapshot) for s in session.snapshots)
        arrivals = [s.arrivals for s in session.snapshots]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == len(arrivals)  # no duplicates
        assert session.snapshots[-1].arrivals == n
        assert session.snapshots[-1].matched == session.outcome.matching.size

    def test_final_snapshot_on_uneven_streams(self, small_instance, small_guide):
        """A stream that isn't a multiple of snapshot_every still gets a
        final end-of-stream snapshot."""
        n = len(small_instance.arrival_stream())
        every = 97
        assert n % every != 0
        session = MatchingSession(
            PolarMatcher(small_guide),
            InstanceSource(small_instance),
            snapshot_every=every,
        )
        session.run()
        assert session.snapshots[-1].arrivals == n
        assert len(session.snapshots) == n // every + 1

    def test_snapshot_callback(self, small_instance):
        seen = []
        session = MatchingSession(
            GreedyMatcher(small_instance.travel),
            IteratorSource(small_instance.arrival_stream()),
            snapshot_every=200,
            on_snapshot=seen.append,
        )
        session.run()
        assert seen == session.snapshots
        assert seen[-1].workers == small_instance.n_workers
        assert seen[-1].tasks == small_instance.n_tasks

    def test_snapshot_counts_kinds(self, small_instance, small_guide):
        session = MatchingSession(
            PolarMatcher(small_guide), InstanceSource(small_instance)
        )
        session.run()
        snap = session.snapshot()
        assert snap.workers == small_instance.n_workers
        assert snap.tasks == small_instance.n_tasks
        assert snap.stream_time == small_instance.arrival_stream()[-1].time
        assert snap.wall_seconds >= 0.0

    def test_snapshot_summary_renders(self, small_instance, small_guide):
        session = MatchingSession(
            PolarMatcher(small_guide), InstanceSource(small_instance)
        )
        session.run()
        text = session.snapshot().summary()
        assert "arrivals=" in text and "matched=" in text

    def test_invalid_snapshot_every(self, small_instance, small_guide):
        with pytest.raises(ConfigurationError):
            MatchingSession(
                PolarMatcher(small_guide),
                InstanceSource(small_instance),
                snapshot_every=0,
            )


class TestPushApi:
    def test_push_style_session(self, small_instance, small_guide):
        reference = run_polar(small_instance, small_guide)
        session = MatchingSession(PolarMatcher(small_guide))
        session.begin()
        for event in small_instance.arrival_stream():
            decision = session.push(event)
            assert isinstance(decision, Decision)
        outcome = session.finish()
        _assert_outcomes_identical(outcome, reference)

    def test_run_without_source_raises(self, small_guide):
        with pytest.raises(ConfigurationError):
            MatchingSession(PolarMatcher(small_guide)).run()
