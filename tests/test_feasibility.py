"""Tests for repro.model.feasibility (Definition 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.entities import Task, Worker
from repro.model.feasibility import (
    deadline_feasible,
    latest_departure,
    slack,
    wait_in_place_feasible,
)
from repro.spatial.geometry import Point
from repro.spatial.travel import TravelModel

TRAVEL = TravelModel(1.0)  # one unit per minute


def _worker(x=0.0, y=0.0, start=0.0, duration=10.0):
    return Worker(id=0, location=Point(x, y), start=start, duration=duration)


def _task(x=0.0, y=0.0, start=0.0, duration=5.0):
    return Task(id=0, location=Point(x, y), start=start, duration=duration)


class TestDeadlineFeasible:
    def test_colocated_simultaneous(self):
        assert deadline_feasible(_worker(), _task(), TRAVEL)

    def test_condition1_task_after_worker_leaves(self):
        worker = _worker(start=0.0, duration=5.0)
        task = _task(start=5.0)  # Sr < Sw + Dw must be strict
        assert not deadline_feasible(worker, task, TRAVEL)
        assert deadline_feasible(worker, _task(start=4.999), TRAVEL)

    def test_condition2_travel_budget(self):
        # Worker appears 2 after the task: remaining budget = 5 - 2 = 3.
        worker = _worker(x=0, start=2.0)
        assert deadline_feasible(worker, _task(x=3.0, start=0.0), TRAVEL)
        assert not deadline_feasible(worker, _task(x=3.01, start=0.0), TRAVEL)

    def test_pre_dispatch_bonus_for_future_tasks(self):
        # The task appears 4 after the worker: budget = 5 + 4 = 9.
        worker = _worker(x=0.0, start=0.0, duration=10.0)
        task = _task(x=9.0, start=4.0, duration=5.0)
        assert deadline_feasible(worker, task, TRAVEL)
        # Stationary semantics cannot do this: from the assignment instant
        # (task arrival) the distance exceeds the task window.
        assert not wait_in_place_feasible(worker, task, TRAVEL, now=4.0)

    def test_slack_sign_matches_feasibility(self):
        worker = _worker(x=0, start=2.0)
        task = _task(x=3.0, start=0.0)
        assert slack(worker, task, TRAVEL) == pytest.approx(0.0)

    @given(
        st.floats(0, 50),
        st.floats(0, 50),
        st.floats(0.1, 20),
        st.floats(0.1, 20),
        st.floats(0, 30),
    )
    def test_feasible_iff_slack_nonnegative(self, sw, sr, dw, dr, x):
        worker = _worker(x=0.0, start=sw, duration=dw)
        task = _task(x=x, start=sr, duration=dr)
        feasible = deadline_feasible(worker, task, TRAVEL)
        if feasible:
            assert task.start < worker.deadline
            assert slack(worker, task, TRAVEL) >= 0
        else:
            assert task.start >= worker.deadline or slack(worker, task, TRAVEL) < 0


class TestWaitInPlace:
    def test_now_before_arrivals_is_infeasible(self):
        assert not wait_in_place_feasible(_worker(start=5.0), _task(start=0.0), TRAVEL, now=4.0)

    def test_travel_from_now(self):
        worker = _worker(x=0.0, start=0.0, duration=100.0)
        task = _task(x=3.0, start=0.0, duration=5.0)
        assert wait_in_place_feasible(worker, task, TRAVEL, now=2.0)
        assert not wait_in_place_feasible(worker, task, TRAVEL, now=2.01)

    def test_worker_gone(self):
        worker = _worker(start=0.0, duration=5.0)
        task = _task(start=6.0, duration=5.0)
        assert not wait_in_place_feasible(worker, task, TRAVEL, now=6.0)

    def test_wait_in_place_implies_pre_dispatch(self):
        # Wait-in-place feasibility at the later arrival implies the
        # flexible (pre-dispatch) feasibility: moving early only helps.
        for x in (0.0, 2.0, 4.0, 6.0):
            worker = _worker(x=0.0, start=3.0, duration=10.0)
            task = _task(x=x, start=1.0, duration=6.0)
            now = max(worker.start, task.start)
            if wait_in_place_feasible(worker, task, TRAVEL, now):
                assert deadline_feasible(worker, task, TRAVEL)


class TestLatestDeparture:
    def test_value(self):
        worker = _worker(x=0.0)
        task = _task(x=3.0, start=0.0, duration=5.0)
        assert latest_departure(worker, task, TRAVEL) == pytest.approx(2.0)

    def test_can_be_past(self):
        worker = _worker(x=100.0)
        task = _task(x=0.0, start=0.0, duration=5.0)
        assert latest_departure(worker, task, TRAVEL) < 0
