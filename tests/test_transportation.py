"""Tests for repro.graph.transportation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlowError, GraphError
from repro.graph.transportation import TransportationProblem


class TestConstruction:
    def test_negative_supply_rejected(self):
        with pytest.raises(GraphError):
            TransportationProblem([-1], [1])

    def test_lane_bounds(self):
        problem = TransportationProblem([1, 2], [3])
        with pytest.raises(GraphError):
            problem.add_lane(2, 0)
        with pytest.raises(GraphError):
            problem.add_lane(0, 1)
        with pytest.raises(GraphError):
            problem.add_lane(0, 0, cost=-1.0)

    def test_counts(self):
        problem = TransportationProblem([1, 2], [3])
        problem.add_lane(0, 0)
        assert problem.n_left == 2 and problem.n_right == 1 and problem.n_lanes == 1


class TestSolve:
    def test_simple_shipment(self):
        problem = TransportationProblem([3, 2], [4, 5])
        problem.add_lane(0, 0)
        problem.add_lane(1, 1)
        solution = problem.solve()
        assert solution.total == 5
        assert solution.lane_flow == {(0, 0): 3, (1, 1): 2}
        assert solution.left_served(0) == 3
        assert solution.right_served(1) == 2
        assert solution.lanes_from(0) == [(0, 3)]
        assert solution.lanes_into(1) == [(1, 2)]

    def test_demand_limited(self):
        problem = TransportationProblem([10], [4])
        problem.add_lane(0, 0)
        assert problem.solve().total == 4

    def test_no_lanes(self):
        problem = TransportationProblem([5], [5])
        assert problem.solve().total == 0

    def test_zero_capacity_types(self):
        problem = TransportationProblem([0, 3], [3, 0])
        problem.add_lane(0, 0)
        problem.add_lane(1, 1)
        problem.add_lane(1, 0)
        assert problem.solve().total == 3

    def test_unknown_method(self):
        problem = TransportationProblem([1], [1])
        with pytest.raises(FlowError):
            problem.solve(method="simplex")

    def test_mincost_reports_cost(self):
        problem = TransportationProblem([2], [1, 1])
        problem.add_lane(0, 0, cost=1.0)
        problem.add_lane(0, 1, cost=3.0)
        solution = problem.solve(method="mincost")
        assert solution.total == 2
        assert solution.cost == pytest.approx(4.0)

    def test_mincost_picks_cheap_lane(self):
        problem = TransportationProblem([1], [1, 1])
        problem.add_lane(0, 0, cost=9.0)
        problem.add_lane(0, 1, cost=1.0)
        solution = problem.solve(method="mincost")
        assert solution.total == 1
        assert solution.lane_flow == {(0, 1): 1}


class TestMethodAgreement:
    @given(st.integers(0, 20_000))
    @settings(max_examples=30, deadline=None)
    def test_all_methods_same_total(self, seed):
        rng = random.Random(seed)
        n_left = rng.randint(1, 6)
        n_right = rng.randint(1, 6)
        supplies = [rng.randint(0, 5) for _ in range(n_left)]
        demands = [rng.randint(0, 5) for _ in range(n_right)]
        lanes = set()
        for _ in range(rng.randint(0, 12)):
            lanes.add((rng.randrange(n_left), rng.randrange(n_right)))

        totals = []
        for method in ("dinic", "edmonds_karp", "mincost"):
            problem = TransportationProblem(supplies, demands)
            for u, v in lanes:
                problem.add_lane(u, v, cost=float(u + v))
            solution = problem.solve(method=method)
            # Shipments never exceed either endpoint capacity.
            for u in range(n_left):
                assert solution.left_served(u) <= supplies[u]
            for v in range(n_right):
                assert solution.right_served(v) <= demands[v]
            totals.append(solution.total)
        assert len(set(totals)) == 1
