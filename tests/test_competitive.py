"""Tests for repro.analysis.competitive."""

import pytest

from repro.analysis.competitive import estimate_competitive_ratio
from repro.core.guide import build_guide
from repro.core.polar_op import run_polar_op
from repro.errors import ConfigurationError
from repro.streams.oracle import exact_oracle
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


@pytest.fixture(scope="module")
def setup():
    config = SyntheticConfig(
        n_workers=250, n_tasks=250, grid_side=6, n_slots=6,
        task_duration_slots=2.0, worker_duration_slots=3.0, seed=2,
    )
    generator = SyntheticGenerator(config)
    a, b = exact_oracle(generator)
    slot_minutes = generator.timeline.slot_minutes
    guide = build_guide(
        a, b, generator.grid, generator.timeline, generator.travel,
        worker_duration=config.worker_duration_slots * slot_minutes,
        task_duration=config.task_duration_slots * slot_minutes,
    )
    return generator, guide


class TestEstimator:
    def test_ratios_in_unit_interval(self, setup):
        generator, guide = setup
        estimate = estimate_competitive_ratio(
            lambda inst: run_polar_op(inst, guide),
            lambda draw: generator.generate(seed=100 + draw),
            n_draws=3,
        )
        assert estimate.algorithm == "POLAR-OP"
        assert estimate.n_draws == 3
        assert 0.0 < estimate.minimum <= estimate.mean <= 1.0
        assert len(estimate.alg_sizes) == len(estimate.opt_sizes) == 3

    def test_min_le_mean(self, setup):
        generator, guide = setup
        estimate = estimate_competitive_ratio(
            lambda inst: run_polar_op(inst, guide),
            lambda draw: generator.generate(seed=200 + draw),
            n_draws=4,
        )
        assert estimate.minimum <= estimate.mean

    def test_invalid_draws(self, setup):
        generator, guide = setup
        with pytest.raises(ConfigurationError):
            estimate_competitive_ratio(
                lambda inst: run_polar_op(inst, guide),
                lambda draw: generator.generate(seed=draw),
                n_draws=0,
            )

    def test_name_override(self, setup):
        generator, guide = setup
        estimate = estimate_competitive_ratio(
            lambda inst: run_polar_op(inst, guide),
            lambda draw: generator.generate(seed=draw),
            n_draws=1,
            name="custom",
        )
        assert estimate.algorithm == "custom"

    def test_empty_estimate_defaults(self):
        from repro.analysis.competitive import CompetitiveRatioEstimate

        empty = CompetitiveRatioEstimate(algorithm="x")
        assert empty.mean == 0.0
        assert empty.minimum == 0.0
        assert empty.n_draws == 0
