"""Tests for repro.prediction.trees (the CART regressor)."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.trees import DecisionTreeRegressor


class TestFitting:
    def test_step_function_recovered(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        # Exact recovery needs the boundary split to be admissible: allow
        # single-row leaves and evaluate every candidate position.
        tree = DecisionTreeRegressor(
            max_depth=2, min_samples_split=2, min_samples_leaf=1, max_candidates=200
        ).fit(x, y)
        predictions = tree.predict(x)
        assert np.abs(predictions - y).max() < 1e-9

    def test_step_function_approximated_with_default_regularisation(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        # Default min_samples_leaf=4 cannot isolate the boundary row, but
        # the error should be confined to a handful of boundary points.
        assert (np.abs(tree.predict(x) - y) > 1e-9).sum() <= 6

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).normal(size=(50, 3))
        y = np.full(50, 7.0)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert tree.n_nodes == 1
        assert (tree.predict(x) == 7.0).all()

    def test_max_depth_zero_is_mean(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.arange(10, dtype=float)
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        assert tree.n_nodes == 1
        assert tree.predict(x[:1])[0] == pytest.approx(y.mean())

    def test_two_feature_interaction(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(size=(400, 2))
        y = np.where((x[:, 0] > 0.5) & (x[:, 1] > 0.5), 5.0, 0.0)
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=2).fit(x, y)
        error = np.abs(tree.predict(x) - y).mean()
        assert error < 0.35

    def test_min_samples_leaf_respected(self):
        x = np.arange(6, dtype=float).reshape(-1, 1)
        y = np.array([0, 0, 0, 10, 10, 10], dtype=float)
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=4).fit(x, y)
        # A split would create a side with < 4 rows, so none happens.
        assert tree.n_nodes == 1

    def test_deeper_tree_fits_better(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(size=(300, 1))
        y = np.sin(6 * x[:, 0])
        shallow = DecisionTreeRegressor(max_depth=1).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=5).fit(x, y)
        err_shallow = ((shallow.predict(x) - y) ** 2).mean()
        err_deep = ((deep.predict(x) - y) ** 2).mean()
        assert err_deep < err_shallow


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(PredictionError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_bad_shapes(self):
        tree = DecisionTreeRegressor()
        with pytest.raises(PredictionError):
            tree.fit(np.zeros((3,)), np.zeros(3))
        with pytest.raises(PredictionError):
            tree.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(PredictionError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))

    def test_bad_params(self):
        with pytest.raises(PredictionError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(PredictionError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_predict_needs_2d(self):
        tree = DecisionTreeRegressor(max_depth=1).fit(
            np.arange(4, dtype=float).reshape(-1, 1), np.arange(4, dtype=float)
        )
        with pytest.raises(PredictionError):
            tree.predict(np.zeros(3))
