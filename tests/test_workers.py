"""Tests for the multi-process shard-worker subsystem.

Covers the IPC framing (repro.serving.ipc), the worker pool backend
(repro.serving.workers), the gateway's backend selection, the
worker-pool ↔ inline parity gate (churn-free and churned), cross-shard
Move migration on both backends, the churn-registry expiry sweep, and
per-shard guides for POLAR serving.
"""

import asyncio
import io
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.engine import GreedyMatcher, PolarMatcher
from repro.errors import GatewayError
from repro.model.entities import Task, Worker
from repro.model.events import MOVE, WORKER, Arrival, Departure, Move
from repro.serving import ipc
from repro.serving.gateway import Gateway
from repro.serving.replay import event_to_record, stream_counts
from repro.serving.session import MatchingSession
from repro.serving.shard import (
    ShardRouter,
    build_shard_guides,
    split_counts_by_shard,
)
from repro.serving.workers import ShardOutcome, WorkerPool
from repro.spatial.geometry import Point
from repro.streams.churn import ChurnConfig


def _greedy_factory(instance):
    return lambda shard: GreedyMatcher(instance.travel, indexed=False)


def _offline_outcome(instance, events):
    session = MatchingSession(GreedyMatcher(instance.travel, indexed=False))
    session.begin()
    for event in events:
        session.push(event)
    return session.finish()


async def _drive(instance, events, backend, n_shards, **kwargs):
    gateway = Gateway(
        instance.grid,
        _greedy_factory(instance),
        n_shards=n_shards,
        backend=backend,
        **kwargs,
    )
    await gateway.start()
    for event in events:
        await gateway.submit(event)
    snapshot = await gateway.drain()
    outcomes = gateway.shard_outcomes()
    await gateway.close()
    return snapshot, outcomes


def _assert_bit_identical(outcomes_a, outcomes_b):
    assert len(outcomes_a) == len(outcomes_b)
    for a, b in zip(outcomes_a, outcomes_b):
        assert a.matching.pairs() == b.matching.pairs()
        assert a.worker_decisions == b.worker_decisions
        assert a.task_decisions == b.task_decisions
        assert a.ignored_workers == b.ignored_workers
        assert a.ignored_tasks == b.ignored_tasks
        assert a.departed_workers == b.departed_workers
        assert a.departed_tasks == b.departed_tasks
        assert a.moves == b.moves


class TestIpcFraming:
    def test_frame_roundtrip(self):
        message = (ipc.ACK, 7, {"decision": "assigned", "partner": 3})
        frame = ipc.encode_frame(message)
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4
        assert ipc.decode_frame(frame[4:]) == message

    def test_async_read_frame_roundtrip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(ipc.encode_frame(("tag", 1, None)))
            reader.feed_data(ipc.encode_frame(("tag", 2, [1.5, "x"])))
            reader.feed_eof()
            first = await ipc.read_frame(reader)
            second = await ipc.read_frame(reader)
            with pytest.raises(EOFError):
                await ipc.read_frame(reader)
            return first, second

        first, second = asyncio.run(scenario())
        assert first == ("tag", 1, None)
        assert second == ("tag", 2, [1.5, "x"])

    def test_async_read_frame_rejects_oversized_prefix(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data((ipc.MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(GatewayError, match="corrupt"):
                await ipc.read_frame(reader)

        asyncio.run(scenario())

    def test_blocking_endpoint_roundtrip(self):
        r1, w1 = os.pipe()
        endpoint = ipc.BlockingEndpoint(r1, w1)
        try:
            endpoint.send((ipc.EVENT, 0, "payload"))
            # send writes to w1, recv reads from r1 — a loopback pair.
            assert endpoint.recv() == (ipc.EVENT, 0, "payload")
        finally:
            endpoint.close()

    def test_blocking_endpoint_eof(self):
        r, w = os.pipe()
        os.close(w)
        endpoint = ipc.BlockingEndpoint(r, os.open(os.devnull, os.O_WRONLY))
        try:
            with pytest.raises(EOFError):
                endpoint.recv()
        finally:
            endpoint.close()


class TestWorkerPoolParity:
    """The acceptance gate: N workers ≡ the in-process N-shard gateway."""

    def test_single_worker_bit_identical_to_offline_session(self, small_instance):
        events = small_instance.arrival_stream()
        snapshot, outcomes = asyncio.run(
            _drive(small_instance, events, "process", 1)
        )
        reference = _offline_outcome(small_instance, events)
        assert outcomes[0].matching.pairs() == reference.matching.pairs()
        assert outcomes[0].worker_decisions == reference.worker_decisions
        assert outcomes[0].task_decisions == reference.task_decisions
        assert snapshot.matched == reference.matching.size
        assert snapshot.backend == "process"
        assert snapshot.worker_crashes == 0

    def test_churn_free_parity_with_inline_backend(self, small_instance):
        events = small_instance.arrival_stream()
        snap_inline, out_inline = asyncio.run(
            _drive(small_instance, events, "inline", 4)
        )
        snap_pool, out_pool = asyncio.run(
            _drive(small_instance, events, "process", 4)
        )
        _assert_bit_identical(out_inline, out_pool)
        assert snap_inline.matched == snap_pool.matched
        assert snap_inline.arrivals == snap_pool.arrivals
        assert [row["matched"] for row in snap_inline.shards] == [
            row["matched"] for row in snap_pool.shards
        ]

    def test_churned_parity_with_inline_backend(self, small_instance):
        stream = small_instance.churn_stream(
            ChurnConfig(departure_rate=0.2, move_rate=0.1, seed=1)
        )
        snap_inline, out_inline = asyncio.run(
            _drive(small_instance, stream, "inline", 3)
        )
        snap_pool, out_pool = asyncio.run(
            _drive(small_instance, stream, "process", 3)
        )
        _assert_bit_identical(out_inline, out_pool)
        assert snap_inline.migrations == snap_pool.migrations
        assert snap_inline.departed == snap_pool.departed
        assert snap_inline.moves == snap_pool.moves
        assert snap_inline.matched == snap_pool.matched

    def test_socket_ingest_and_refreshed_snapshot(self, small_instance):
        """The full network path over worker shards: loadgen acks per
        event and /snapshot aggregates the workers' true totals."""
        from repro.serving.loadgen import run_loadgen

        events = small_instance.arrival_stream()

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                backend="process",
            )
            await gateway.start(port=0, metrics_port=0)
            report = await run_loadgen(events, port=gateway.tcp_port)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.metrics_port
            )
            writer.write(b"GET /snapshot HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            payload = json.loads(raw.partition(b"\r\n\r\n")[2])
            await gateway.close()
            return report, payload

        report, payload = asyncio.run(scenario())
        assert report.acked == len(events)
        assert report.errors == 0
        assert payload["arrivals"] == len(events)
        assert payload["backend"] == "process"
        assert sum(row["arrivals"] for row in payload["shards"]) == len(events)


class TestWorkerLifecycle:
    def test_worker_crash_surfaces_clean_error_ack(self, small_instance):
        """With recovery disabled, killing a worker mid-stream must
        yield error acks for its shard (no hang), keep the sibling shard
        serving, and leave the drain idempotent with a structured
        ShardOutcome for the dead shard (recovery itself is covered in
        test_recovery.py)."""
        events = small_instance.arrival_stream()

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
                backend="process",
                max_worker_restarts=0,
            )
            await gateway.start(port=0)
            for event in events[:40]:
                await gateway.submit(event)
            victim = gateway._backend.handles[0].process
            victim.kill()
            deadline = time.monotonic() + 5.0
            while gateway._backend.handles[0].alive:
                assert time.monotonic() < deadline, "crash never detected"
                await asyncio.sleep(0.02)
            dead = next(
                e for e in events[40:] if gateway.router.shard_of(e) == 0
            )
            live = next(
                e for e in events[40:] if gateway.router.shard_of(e) == 1
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            for event in (dead, live):
                writer.write(
                    json.dumps(event_to_record(event)).encode() + b"\n"
                )
            await writer.drain()
            dead_reply = json.loads(
                await asyncio.wait_for(reader.readline(), 10)
            )
            live_reply = json.loads(
                await asyncio.wait_for(reader.readline(), 10)
            )
            writer.close()
            first = await gateway.drain()
            second = await gateway.drain()  # idempotent after a crash
            outcomes = gateway.shard_outcomes()
            await gateway.close()
            return dead_reply, live_reply, first, second, outcomes

        dead_reply, live_reply, first, second, outcomes = asyncio.run(
            scenario()
        )
        assert "error" in dead_reply
        assert "crashed" in dead_reply["error"]
        assert "error" not in live_reply
        assert first is second
        assert first.worker_crashes == 1
        assert first.worker_restarts == 0
        assert isinstance(outcomes[0], ShardOutcome)
        assert "crashed" in outcomes[0].error
        assert outcomes[0].state == "degraded"
        assert not isinstance(outcomes[1], ShardOutcome)
        assert outcomes[1] is not None

    def test_submit_to_dead_worker_fails_fast(self, small_instance):
        events = small_instance.arrival_stream()

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=1,
                backend="process",
                max_worker_restarts=0,
            )
            await gateway.start()
            gateway._backend.handles[0].process.kill()
            deadline = time.monotonic() + 5.0
            while gateway._backend.handles[0].alive:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.02)
            # submit() enqueues; the collector turns the failed future
            # into a malformed count instead of hanging the drain.
            await gateway.submit(events[0])
            snapshot = await gateway.drain()
            await gateway.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot.malformed == 1
        assert snapshot.worker_crashes == 1

    def test_close_reaps_all_worker_processes(self, small_instance):
        events = small_instance.arrival_stream()[:20]

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=3,
                backend="process",
            )
            await gateway.start()
            processes = [h.process for h in gateway._backend.handles]
            for event in events:
                await gateway.submit(event)
            await gateway.close()
            return processes

        processes = asyncio.run(scenario())
        deadline = time.monotonic() + 5.0
        while any(p.is_alive() for p in processes):
            assert time.monotonic() < deadline, "workers left running"
            time.sleep(0.05)
        assert all(not p.is_alive() for p in processes)

    def test_shards_property_unavailable_on_worker_pool(self, small_instance):
        gateway = Gateway(
            small_instance.grid,
            _greedy_factory(small_instance),
            n_shards=2,
            backend="process",
        )
        with pytest.raises(GatewayError, match="no in-process shards"):
            gateway.shards

    def test_unknown_backend_rejected(self, small_instance):
        with pytest.raises(GatewayError, match="unknown backend"):
            Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                backend="threads",
            )

    def test_pool_rejects_bad_parameters(self):
        with pytest.raises(GatewayError):
            WorkerPool(0, lambda shard: None)
        with pytest.raises(GatewayError):
            WorkerPool(1, lambda shard: None, outbox_size=0)


class TestServeCliWorkers:
    def _dump(self, tmp_path):
        from repro.cli import main

        stream = tmp_path / "events.jsonl"
        code = main(
            ["dump", "--workers", "60", "--tasks", "60", "--grid-side", "8",
             "--n-slots", "6", "--seed", "5", "--out", str(stream)]
        )
        assert code == 0
        return stream

    def test_workers_shards_mismatch_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        stream = self._dump(tmp_path)
        capsys.readouterr()
        code = main(
            ["serve", str(stream), "--workers", "2", "--shards", "3",
             "--port", "0", "--metrics-port", "0"]
        )
        assert code == 2
        assert "one process per shard" in capsys.readouterr().err

    def test_negative_workers_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        stream = self._dump(tmp_path)
        capsys.readouterr()
        code = main(
            ["serve", str(stream), "--workers", "-1", "--port", "0",
             "--metrics-port", "0"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_sigterm_tears_down_gateway_and_workers(self, tmp_path):
        """`repro serve --workers 2` + SIGTERM: graceful drain, exit 0,
        no orphaned worker processes."""
        stream = self._dump(tmp_path)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(stream),
             "--workers", "2", "--port", "0", "--metrics-port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "worker process(es)" in banner, banner
            proc.stdout.readline()  # the drain-hint line
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "[gateway closed" in output
        # Daemonic forked children die with the parent; pgrep by the
        # worker process name guards against strays.
        strays = subprocess.run(
            ["pgrep", "-f", "ftoa-shard-worker"], capture_output=True
        )
        assert strays.returncode != 0, strays.stdout


class TestCrossShardMigration:
    """A Move whose new location hashes to a foreign shard migrates."""

    def _pick_migration(self, instance, n_shards):
        """An early worker arrival plus a destination owned by another
        shard (deterministic: ring + grid are fixed)."""
        router = ShardRouter(instance.grid, n_shards)
        grid = instance.grid
        for event in instance.arrival_stream():
            if not event.is_worker:
                continue
            origin = router.shard_of(event)
            for area in range(grid.n_areas):
                if router.shard_of_cell(area) != origin:
                    return event, grid.center_of(area), origin, router.shard_of_cell(area)
        raise AssertionError("no cross-shard destination found")

    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_waiting_object_migrates(self, small_instance, backend):
        arrival, destination, origin, target = self._pick_migration(
            small_instance, 3
        )
        move = Move(
            time=arrival.time, seq=1, kind=arrival.kind,
            object_id=arrival.entity.id, location=destination,
        )

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=3,
                backend=backend,
            )
            await gateway.start(port=0)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            for event in (arrival, move):
                writer.write(
                    json.dumps(event_to_record(event)).encode() + b"\n"
                )
            await writer.drain()
            arrival_reply = json.loads(
                await asyncio.wait_for(reader.readline(), 10)
            )
            move_reply = json.loads(
                await asyncio.wait_for(reader.readline(), 10)
            )
            writer.close()
            snapshot = await gateway.drain()
            outcomes = gateway.shard_outcomes()
            await gateway.close()
            return arrival_reply, move_reply, snapshot, outcomes

        arrival_reply, move_reply, snapshot, outcomes = asyncio.run(scenario())
        assert arrival_reply["shard"] == origin
        assert move_reply["kind"] == MOVE
        assert move_reply["migrated"] is True
        assert move_reply["shard"] == target
        assert snapshot.migrations == 1
        # The old shard records the departure, the new shard hosts the
        # (re-located, deadline-preserving) arrival.
        assert outcomes[origin].departed_workers == 1
        decisions = outcomes[target].worker_decisions
        assert arrival.entity.id in decisions

    def test_migration_parity_across_backends(self, small_instance):
        arrival, destination, origin, target = self._pick_migration(
            small_instance, 3
        )
        move = Move(
            time=arrival.time + 1.0, seq=1, kind=arrival.kind,
            object_id=arrival.entity.id, location=destination,
        )

        async def run(backend):
            return await _drive(
                small_instance, [arrival, move], backend, 3
            )

        snap_a, out_a = asyncio.run(run("inline"))
        snap_b, out_b = asyncio.run(run("process"))
        _assert_bit_identical(out_a, out_b)
        assert snap_a.migrations == snap_b.migrations == 1

    def test_migrant_cannot_match_expired_partner(self, small_instance):
        """The re-admission is stamped at the move instant, so the new
        shard's matcher must not pair the migrant with a task whose
        deadline passed before the move (the stale-clock hazard of
        re-admitting at the original arrival time)."""
        grid = small_instance.grid
        router = ShardRouter(grid, 3)
        origin_area = 0
        origin = router.shard_of_cell(origin_area)
        foreign_area = next(
            area for area in range(grid.n_areas)
            if router.shard_of_cell(area) != origin
        )
        destination = grid.center_of(foreign_area)
        target = router.shard_of_cell(foreign_area)
        # The trap: a task co-located with the destination, expired long
        # before the move happens, waiting in the target shard's pool.
        trap = Task(id=8001, location=destination, start=0.0, duration=50.0)
        worker = Worker(
            id=8002, location=grid.center_of(origin_area), start=10.0,
            duration=500.0,
        )
        events = [
            Arrival(time=0.0, seq=0, kind="task", entity=trap),
            Arrival(time=10.0, seq=1, kind="worker", entity=worker),
            # t=400: trap expired at t=50; the migrating worker must not
            # resurrect it.
            Move(time=400.0, seq=2, kind="worker", object_id=8002,
                 location=destination),
        ]

        for backend in ("inline", "process"):
            snapshot, outcomes = asyncio.run(
                _drive(small_instance, events, backend, 3)
            )
            assert snapshot.migrations == 1, backend
            assert snapshot.matched == 0, (
                f"{backend}: migrated worker matched an expired task"
            )
            migrant = outcomes[target].worker_decisions[8002]
            assert migrant.action in ("stay", "wait")

    def test_move_of_settled_object_does_not_migrate(self, small_instance):
        """A matched object's cross-shard move is the usual no-op."""
        travel = small_instance.travel
        grid = small_instance.grid
        router = ShardRouter(grid, 3)
        # A co-located worker/task pair matches immediately under
        # greedy; then move the worker across shards.
        worker = Worker(id=9001, location=Point(1.0, 1.0), start=0.0, duration=300.0)
        task = Task(id=9002, location=Point(1.0, 1.0), start=1.0, duration=300.0)
        origin = router.shard_of_cell(grid.area_of(worker.location))
        foreign_area = next(
            area for area in range(grid.n_areas)
            if router.shard_of_cell(area) != origin
        )
        events = [
            Arrival(time=0.0, seq=0, kind="worker", entity=worker),
            Arrival(time=1.0, seq=1, kind="task", entity=task),
            Move(time=2.0, seq=2, kind="worker", object_id=9001,
                 location=grid.center_of(foreign_area)),
        ]

        async def run(backend):
            return await _drive(small_instance, events, backend, 3)

        for backend in ("inline", "process"):
            snapshot, outcomes = asyncio.run(run(backend))
            assert snapshot.migrations == 0
            assert snapshot.matched == 1
            assert outcomes[origin].worker_decisions[9001].action == "assigned"


class TestRegistryExpirySweep:
    def test_registry_bounded_by_live_objects_soak(self, small_instance):
        """PR 4 follow-up: matched/expired registry entries are swept
        once stream time passes their deadline, so a long stream's
        registry is bounded by concurrently-live objects."""
        events = small_instance.arrival_stream()

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
            )
            await gateway.start()
            peak = 0
            for event in events:
                await gateway.submit(event)
                peak = max(peak, len(gateway._objects))
            # Let the dispatcher finish sweeping in dispatch order.
            while gateway.processed < len(events):
                await asyncio.sleep(0.01)
            final = len(gateway._objects)
            snapshot = await gateway.drain()
            await gateway.close()
            return peak, final, snapshot

        peak, final, snapshot = asyncio.run(scenario())
        total = len(events)
        # The stream spans 8 slots; far fewer than all objects are live
        # at once, and the final registry only holds last-window objects.
        assert peak < total
        assert final < total / 2
        assert snapshot.registry_size == final

    def test_churn_within_window_survives_the_sweep(self, small_instance):
        """The sweep must never eat an entry a legal churn event still
        needs: sampled churn (always inside availability windows) acks
        clean end-to-end."""
        stream = small_instance.churn_stream(
            ChurnConfig(departure_rate=0.15, move_rate=0.1, seed=7)
        )

        async def scenario():
            gateway = Gateway(
                small_instance.grid,
                _greedy_factory(small_instance),
                n_shards=2,
            )
            await gateway.start()
            for event in stream:
                await gateway.submit(event)
            snapshot = await gateway.drain()
            await gateway.close()
            return snapshot

        snapshot = asyncio.run(scenario())
        assert snapshot.malformed == 0
        assert snapshot.departed > 0

    def test_expired_churn_after_sweep_is_rejected_as_unknown(
        self, small_instance
    ):
        """Churn past an object's deadline may find the entry swept —
        the documented trade-off bounding the registry."""
        first = small_instance.arrival_stream()[0]
        horizon_jump = Arrival(
            time=first.entity.deadline + 100.0,
            seq=1,
            kind="worker",
            entity=Worker(
                id=77001,
                location=first.entity.location,
                start=first.entity.deadline + 100.0,
                duration=60.0,
            ),
        )
        late_departure = Departure(
            time=horizon_jump.time + 1.0, seq=2, kind=first.kind,
            object_id=first.entity.id,
        )

        async def scenario():
            gateway = Gateway(
                small_instance.grid, _greedy_factory(small_instance)
            )
            await gateway.start()
            await gateway.submit(first)
            await gateway.submit(horizon_jump)
            while gateway.processed < 2:
                await asyncio.sleep(0.01)
            error = None
            try:
                await gateway.submit(late_departure)
            except GatewayError as exc:
                error = str(exc)
            await gateway.drain()
            await gateway.close()
            return error

        error = asyncio.run(scenario())
        assert error is not None and "never saw it arrive" in error


class TestShardedGuides:
    def test_split_counts_partition_the_mass(self, small_instance):
        import numpy as np

        events = small_instance.arrival_stream()
        worker_counts, task_counts, _wd, _td = stream_counts(
            events, small_instance.grid, small_instance.timeline
        )
        router = ShardRouter(small_instance.grid, 3)
        splits = split_counts_by_shard(worker_counts, router)
        assert len(splits) == 3
        assert sum(int(s.sum()) for s in splits) == int(worker_counts.sum())
        # Cell ownership is exclusive: per-area masses are disjoint.
        stacked = np.stack([s.sum(axis=0) for s in splits])
        assert ((stacked > 0).sum(axis=0) <= 1).all()
        np.testing.assert_array_equal(sum(splits), worker_counts)

    def test_per_shard_guides_beat_global_guide_when_sharded(
        self, small_instance
    ):
        """ROADMAP: a global guide pairs nodes across region shards and
        commits ~nothing inside one shard; per-shard guides from the
        shard's own predicted counts must serve at least as many pairs
        on an actual sharded run."""
        from repro.core.guide import build_guide

        n_shards = 3
        events = small_instance.arrival_stream()
        worker_counts, task_counts, wd, td = stream_counts(
            events, small_instance.grid, small_instance.timeline
        )
        router = ShardRouter(small_instance.grid, n_shards)
        global_guide = build_guide(
            worker_counts, task_counts, small_instance.grid,
            small_instance.timeline, small_instance.travel, wd, td,
        )
        shard_guides = build_shard_guides(
            worker_counts, task_counts, router, small_instance.timeline,
            small_instance.travel, wd, td,
        )
        assert len(shard_guides) == n_shards

        async def run(guides):
            gateway = Gateway(
                small_instance.grid,
                lambda shard: PolarMatcher(
                    guides[shard % len(guides)], seed=0
                ),
                n_shards=n_shards,
            )
            await gateway.start()
            for event in events:
                await gateway.submit(event)
            snapshot = await gateway.drain()
            await gateway.close()
            return snapshot.matched

        matched_global = asyncio.run(run([global_guide]))
        matched_sharded = asyncio.run(run(shard_guides))
        assert matched_sharded >= matched_global
        assert matched_sharded > 0

    def test_cli_builds_per_shard_guides_for_sharded_serving(
        self, tmp_path, capsys
    ):
        """`repro serve --shards K --guide from-forecast` splits the
        forecast by ring ownership (exercised via the factory helper)."""
        from repro.cli import build_parser, _load_jsonl, _matcher_factory, _replay_context, main

        stream = tmp_path / "events.jsonl"
        history = tmp_path / "history.jsonl"
        for seed, path in ((1, stream), (9, history)):
            assert main(
                ["dump", "--workers", "80", "--tasks", "80", "--grid-side",
                 "8", "--n-slots", "6", "--seed", str(seed), "--out",
                 str(path)]
            ) == 0
        capsys.readouterr()
        args = build_parser().parse_args(
            ["serve", str(stream), "--algorithm", "polar", "--shards", "3",
             "--guide", "from-forecast", "--history", str(history),
             "--predictor", "HA"]
        )
        config, events = _load_jsonl(str(stream))
        grid, timeline, travel = _replay_context(config, None)
        factory = _matcher_factory(args, events, grid, timeline, travel)
        out = capsys.readouterr().out
        assert "3 per-shard guides" in out
        matchers = [factory(shard) for shard in range(3)]
        guides = {id(matcher.guide) for matcher in matchers}
        assert len(guides) == 3  # one distinct guide per shard
