"""Tests for repro.streams.distributions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.streams.distributions import TruncatedNormal


class TestConstruction:
    def test_invalid_sigma(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormal(0, 0, 0, 1)

    def test_empty_interval(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormal(0, 1, 2, 2)

    def test_zero_mass_interval(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormal(0, 0.1, 1e6, 1e6 + 1)


class TestSampling:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_samples_within_bounds(self, seed):
        dist = TruncatedNormal(mu=5, sigma=4, low=0, high=10)
        rng = random.Random(seed)
        for value in dist.sample_many(50, rng):
            assert 0 <= value <= 10

    def test_sample_many_negative(self):
        dist = TruncatedNormal(0, 1, -1, 1)
        with pytest.raises(ConfigurationError):
            dist.sample_many(-1, random.Random(0))

    def test_deterministic_given_rng(self):
        dist = TruncatedNormal(0, 1, -1, 1)
        a = dist.sample_many(10, random.Random(42))
        b = dist.sample_many(10, random.Random(42))
        assert a == b

    def test_mean_roughly_centred(self):
        dist = TruncatedNormal(mu=5, sigma=1, low=0, high=10)
        values = dist.sample_many(2000, random.Random(1))
        mean = sum(values) / len(values)
        assert abs(mean - 5) < 0.15


class TestProbabilities:
    def test_full_interval_is_one(self):
        dist = TruncatedNormal(mu=3, sigma=2, low=0, high=10)
        assert dist.interval_probability(0, 10) == pytest.approx(1.0)

    def test_outside_is_zero(self):
        dist = TruncatedNormal(mu=3, sigma=2, low=0, high=10)
        assert dist.interval_probability(11, 12) == 0.0
        assert dist.interval_probability(5, 5) == 0.0

    def test_additivity(self):
        dist = TruncatedNormal(mu=3, sigma=2, low=0, high=10)
        whole = dist.interval_probability(1, 7)
        parts = dist.interval_probability(1, 4) + dist.interval_probability(4, 7)
        assert whole == pytest.approx(parts)

    def test_bin_probabilities_sum_to_one(self):
        dist = TruncatedNormal(mu=3, sigma=2, low=0, high=10)
        edges = [0, 1, 2.5, 5, 7.5, 10]
        probs = dist.bin_probabilities(edges)
        assert sum(probs) == pytest.approx(1.0)
        assert all(p >= 0 for p in probs)

    def test_bin_edges_validation(self):
        dist = TruncatedNormal(0, 1, -1, 1)
        with pytest.raises(ConfigurationError):
            dist.bin_probabilities([0])
        with pytest.raises(ConfigurationError):
            dist.bin_probabilities([0, 0])

    @given(
        st.floats(-5, 5),
        st.floats(0.1, 5),
        st.integers(2, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_bins_always_normalised(self, mu, sigma, n_bins):
        dist = TruncatedNormal(mu=mu, sigma=sigma, low=-10, high=10)
        edges = [-10 + 20 * i / n_bins for i in range(n_bins + 1)]
        assert sum(dist.bin_probabilities(edges)) == pytest.approx(1.0)

    def test_empirical_matches_analytic(self):
        dist = TruncatedNormal(mu=2, sigma=3, low=0, high=8)
        rng = random.Random(9)
        samples = dist.sample_many(4000, rng)
        empirical = sum(1 for v in samples if v < 2) / len(samples)
        analytic = dist.interval_probability(0, 2)
        assert abs(empirical - analytic) < 0.03
