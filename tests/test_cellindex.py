"""Tests for repro.core.cellindex (exactness against brute force)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cellindex import CellIndex
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid


def _index_with_points(rng: random.Random, n: int):
    grid = Grid.square(8)
    index = CellIndex(grid)
    locations = {}
    for ident in range(n):
        p = Point(rng.uniform(0, 8), rng.uniform(0, 8))
        index.add(ident, p)
        locations[ident] = p
    return grid, index, locations


class TestBookkeeping:
    def test_add_remove_contains(self):
        grid = Grid.square(4)
        index = CellIndex(grid)
        index.add(1, Point(0.5, 0.5))
        assert 1 in index and len(index) == 1
        index.remove(1)
        assert 1 not in index and len(index) == 0

    def test_remove_missing_is_noop(self):
        index = CellIndex(Grid.square(4))
        index.remove(42)
        assert len(index) == 0

    def test_re_add_replaces(self):
        index = CellIndex(Grid.square(4))
        index.add(1, Point(0.5, 0.5))
        index.add(1, Point(3.5, 3.5))
        assert len(index) == 1
        assert index.within(Point(3.5, 3.5), 0.1) == [(1, 0.0)]

    def test_ids(self):
        index = CellIndex(Grid.square(4))
        index.add(1, Point(0.5, 0.5))
        index.add(2, Point(1.5, 0.5))
        assert sorted(index.ids()) == [1, 2]


class TestQueriesAgainstBruteForce:
    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_within_matches_brute_force(self, seed):
        rng = random.Random(seed)
        _grid, index, locations = _index_with_points(rng, rng.randint(0, 25))
        origin = Point(rng.uniform(0, 8), rng.uniform(0, 8))
        radius = rng.uniform(0, 9)
        found = dict(index.within(origin, radius))
        expected = {
            ident: origin.distance_to(p)
            for ident, p in locations.items()
            if origin.distance_to(p) <= radius
        }
        assert set(found) == set(expected)

    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_nearest_matches_brute_force(self, seed):
        rng = random.Random(seed)
        _grid, index, locations = _index_with_points(rng, rng.randint(0, 25))
        origin = Point(rng.uniform(0, 8), rng.uniform(0, 8))
        max_distance = rng.uniform(0, 9)
        found = index.nearest_feasible(origin, lambda _i, _d: True, max_distance)
        candidates = {
            ident: origin.distance_to(p)
            for ident, p in locations.items()
            if origin.distance_to(p) <= max_distance
        }
        if not candidates:
            assert found is None
        else:
            best = min(candidates.values())
            assert found is not None
            assert origin.distance_to(locations[found]) <= best + 1e-9

    def test_feasibility_filter_applied(self):
        index = CellIndex(Grid.square(4))
        index.add(1, Point(1.0, 1.0))
        index.add(2, Point(2.0, 1.0))
        origin = Point(0.0, 1.0)
        found = index.nearest_feasible(origin, lambda i, _d: i != 1, 10.0)
        assert found == 2
