"""Tests for repro.core.cellindex (exactness against brute force)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cellindex import CellIndex
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid


def _index_with_points(rng: random.Random, n: int):
    grid = Grid.square(8)
    index = CellIndex(grid)
    locations = {}
    for ident in range(n):
        p = Point(rng.uniform(0, 8), rng.uniform(0, 8))
        index.add(ident, p)
        locations[ident] = p
    return grid, index, locations


class TestBookkeeping:
    def test_add_remove_contains(self):
        grid = Grid.square(4)
        index = CellIndex(grid)
        index.add(1, Point(0.5, 0.5))
        assert 1 in index and len(index) == 1
        index.remove(1)
        assert 1 not in index and len(index) == 0

    def test_remove_missing_is_noop(self):
        index = CellIndex(Grid.square(4))
        index.remove(42)
        assert len(index) == 0

    def test_re_add_replaces(self):
        index = CellIndex(Grid.square(4))
        index.add(1, Point(0.5, 0.5))
        index.add(1, Point(3.5, 3.5))
        assert len(index) == 1
        assert index.within(Point(3.5, 3.5), 0.1) == [(1, 0.0)]

    def test_ids(self):
        index = CellIndex(Grid.square(4))
        index.add(1, Point(0.5, 0.5))
        index.add(2, Point(1.5, 0.5))
        assert sorted(index.ids()) == [1, 2]


class TestQueriesAgainstBruteForce:
    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_within_matches_brute_force(self, seed):
        rng = random.Random(seed)
        _grid, index, locations = _index_with_points(rng, rng.randint(0, 25))
        origin = Point(rng.uniform(0, 8), rng.uniform(0, 8))
        radius = rng.uniform(0, 9)
        found = dict(index.within(origin, radius))
        expected = {
            ident: origin.distance_to(p)
            for ident, p in locations.items()
            if origin.distance_to(p) <= radius
        }
        assert set(found) == set(expected)

    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_nearest_matches_brute_force(self, seed):
        rng = random.Random(seed)
        _grid, index, locations = _index_with_points(rng, rng.randint(0, 25))
        origin = Point(rng.uniform(0, 8), rng.uniform(0, 8))
        max_distance = rng.uniform(0, 9)
        found = index.nearest_feasible(origin, lambda _i, _d: True, max_distance)
        candidates = {
            ident: origin.distance_to(p)
            for ident, p in locations.items()
            if origin.distance_to(p) <= max_distance
        }
        if not candidates:
            assert found is None
        else:
            best = min(candidates.values())
            assert found is not None
            assert origin.distance_to(locations[found]) <= best + 1e-9

    def test_feasibility_filter_applied(self):
        index = CellIndex(Grid.square(4))
        index.add(1, Point(1.0, 1.0))
        index.add(2, Point(2.0, 1.0))
        origin = Point(0.0, 1.0)
        found = index.nearest_feasible(origin, lambda i, _d: i != 1, 10.0)
        assert found == 2

    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_random_inserts_and_removes_match_brute_force(self, seed):
        """Interleaved add/remove churn (the online algorithms' usage
        pattern) keeps both queries exact, including the occupied-bbox
        early-termination bookkeeping that removals can invalidate."""
        rng = random.Random(seed)
        grid = Grid.square(12)
        index = CellIndex(grid)
        live = {}
        next_id = 0
        for _step in range(rng.randint(1, 60)):
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                index.remove(victim)
                del live[victim]
            else:
                p = Point(rng.uniform(0, 12), rng.uniform(0, 12))
                index.add(next_id, p)
                live[next_id] = p
                next_id += 1
        assert len(index) == len(live)
        origin = Point(rng.uniform(0, 12), rng.uniform(0, 12))
        radius = rng.uniform(0, 14)
        found = dict(index.within(origin, radius))
        expected = {
            ident: origin.distance_to(p)
            for ident, p in live.items()
            if origin.distance_to(p) <= radius
        }
        assert set(found) == set(expected)
        nearest = index.nearest_feasible(origin, lambda _i, _d: True, radius)
        if expected:
            best = min(expected.values())
            assert nearest is not None
            assert origin.distance_to(live[nearest]) <= best + 1e-9
        else:
            assert nearest is None


class TestSparseEarlyTermination:
    """The occupied-bbox cutoff must not change results on sparse grids."""

    def test_sparse_large_grid_queries_are_exact(self):
        rng = random.Random(3)
        grid = Grid.square(200)
        index = CellIndex(grid)
        live = {}
        # A handful of objects clustered in one corner of a huge grid —
        # the worst case for the old O(max(nx, ny)) ring walk.
        for ident in range(8):
            p = Point(rng.uniform(0, 10), rng.uniform(0, 10))
            index.add(ident, p)
            live[ident] = p
        origin = Point(190.0, 190.0)
        found = dict(index.within(origin, 300.0))
        assert set(found) == set(live)
        nearest = index.nearest_feasible(origin, lambda _i, _d: True, 300.0)
        best = min(live, key=lambda i: (origin.distance_to(live[i]), i))
        assert nearest == best

    def test_queries_on_empty_index(self):
        index = CellIndex(Grid.square(50))
        assert index.within(Point(25.0, 25.0), 100.0) == []
        assert index.nearest_feasible(Point(25.0, 25.0), lambda _i, _d: True, 100.0) is None

    def test_bbox_recomputed_after_boundary_removal(self):
        grid = Grid.square(100)
        index = CellIndex(grid)
        index.add(1, Point(0.5, 0.5))
        index.add(2, Point(99.5, 99.5))  # stretches the bbox corner-to-corner
        index.remove(2)  # boundary cell empties -> bbox must shrink back
        assert dict(index.within(Point(50.0, 50.0), 1000.0)).keys() == {1}
        assert index.nearest_feasible(Point(99.0, 99.0), lambda _i, _d: True, 1000.0) == 1
        index.add(3, Point(99.5, 0.5))
        found = dict(index.within(Point(50.0, 50.0), 1000.0))
        assert set(found) == {1, 3}

    def test_batched_ring_path_matches_brute_force(self):
        """More than _BATCH_MIN candidates in one ring takes the numpy
        path; results must equal the scalar brute force."""
        rng = random.Random(7)
        grid = Grid.square(4)
        index = CellIndex(grid)
        live = {}
        for ident in range(60):  # all in one cell -> one big ring
            p = Point(rng.uniform(1.0, 1.9), rng.uniform(1.0, 1.9))
            index.add(ident, p)
            live[ident] = p
        origin = Point(1.5, 1.5)
        radius = 0.4
        found = dict(index.within(origin, radius))
        expected = {
            ident: origin.distance_to(p)
            for ident, p in live.items()
            if origin.distance_to(p) <= radius
        }
        assert found == pytest.approx(expected)
        nearest = index.nearest_feasible(origin, lambda _i, _d: True, 2.0)
        best = min(live, key=lambda i: (origin.distance_to(live[i]), i))
        assert nearest == best
