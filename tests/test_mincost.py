"""Tests for repro.graph.mincost."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlowError
from repro.graph.maxflow import dinic
from repro.graph.mincost import min_cost_max_flow
from repro.graph.network import FlowNetwork


class TestKnownInstances:
    def test_prefers_cheap_path(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 1, cost=1.0)
        network.add_edge(0, 2, 1, cost=10.0)
        network.add_edge(1, 3, 1, cost=1.0)
        network.add_edge(2, 3, 1, cost=10.0)
        result = min_cost_max_flow(network, 0, 3)
        assert result.flow == 2
        assert result.cost == pytest.approx(22.0)  # both paths needed

    def test_cost_zero_when_free(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 5)
        result = min_cost_max_flow(network, 0, 1)
        assert result == (5, 0.0)

    def test_chooses_min_cost_among_max_flows(self):
        # Two parallel unit paths into a shared unit bottleneck: only one
        # unit can flow overall and the cheaper path must carry it.
        bottleneck = FlowNetwork(5)
        bottleneck.add_edge(0, 1, 1, cost=5.0)
        bottleneck.add_edge(0, 2, 1, cost=1.0)
        bottleneck.add_edge(1, 3, 1, cost=0.0)
        bottleneck.add_edge(2, 3, 1, cost=0.0)
        bottleneck.add_edge(3, 4, 1, cost=0.0)
        result = min_cost_max_flow(bottleneck, 0, 4)
        assert result.flow == 1
        assert result.cost == pytest.approx(1.0)

    def test_bad_endpoints(self):
        network = FlowNetwork(2)
        with pytest.raises(FlowError):
            min_cost_max_flow(network, 0, 0)


class TestAgainstDinic:
    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_flow_value_matches_dinic(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 9)
        edges = []
        for _ in range(rng.randint(0, 20)):
            tail, head = rng.randrange(n), rng.randrange(n)
            if tail != head:
                edges.append((tail, head, rng.randint(1, 8), float(rng.randint(0, 9))))
        a = FlowNetwork(n)
        b = FlowNetwork(n)
        for tail, head, cap, cost in edges:
            a.add_edge(tail, head, cap, cost)
            b.add_edge(tail, head, cap, cost)
        result = min_cost_max_flow(a, 0, n - 1)
        assert result.flow == dinic(b, 0, n - 1)
        a.check_conservation(0, n - 1)
