"""Tests for repro.core.opt."""

import pytest

from repro.core.batch import run_batch
from repro.core.greedy import run_simple_greedy
from repro.core.opt import run_opt
from repro.core.polar import run_polar
from repro.core.polar_op import run_polar_op
from repro.errors import ConfigurationError
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator


class TestExample1:
    def test_opt_is_six(self, example1):
        instance, _a, _b, _module = example1
        assert run_opt(instance, method="exact").size == 6

    def test_opt_matching_is_feasible(self, example1):
        instance, _a, _b, _module = example1
        outcome = run_opt(instance, method="exact")
        violations = outcome.matching.validate_feasibility(
            instance.worker_map(), instance.task_map(), instance.travel
        )
        assert violations == []

    def test_compressed_close_to_exact(self, example1):
        instance, _a, _b, _module = example1
        exact = run_opt(instance, method="exact").size
        compressed = run_opt(instance, method="compressed").size
        assert abs(exact - compressed) <= 2


class TestDominance:
    def test_opt_bounds_every_online_algorithm(self, small_instance, small_guide):
        optimum = run_opt(small_instance, method="exact").size
        for outcome in (
            run_simple_greedy(small_instance),
            run_batch(small_instance),
            run_polar(small_instance, small_guide),
            run_polar_op(small_instance, small_guide),
        ):
            assert outcome.size <= optimum, outcome.algorithm

    @pytest.mark.parametrize("seed", range(3))
    def test_dominance_across_seeds(self, seed):
        generator = SyntheticGenerator(
            SyntheticConfig(n_workers=200, n_tasks=200, grid_side=8, n_slots=6, seed=seed)
        )
        instance = generator.generate()
        optimum = run_opt(instance, method="exact").size
        assert run_simple_greedy(instance).size <= optimum
        assert run_batch(instance).size <= optimum


class TestModes:
    def test_auto_uses_exact_for_small(self, small_instance):
        outcome = run_opt(small_instance, method="auto")
        assert outcome.extras["mode"] == 0.0

    def test_compressed_reports_size_via_extras(self, small_instance):
        outcome = run_opt(small_instance, method="compressed")
        assert outcome.extras["mode"] == 1.0
        assert outcome.size == outcome.extras["matching_size"]
        assert outcome.matching.size == 0  # value only, no pairs

    def test_compressed_tracks_exact(self, small_instance):
        exact = run_opt(small_instance, method="exact").size
        compressed = run_opt(small_instance, method="compressed").size
        assert compressed >= 0
        # The discretisation error stays small on a dense instance.
        assert abs(exact - compressed) / max(exact, 1) < 0.15

    def test_unknown_method(self, small_instance):
        with pytest.raises(ConfigurationError):
            run_opt(small_instance, method="oracle")
