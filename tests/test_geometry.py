"""Tests for repro.spatial.geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import BoundingBox, Point, centroid, euclidean_distance, midpoint

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance_simple(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_matches_module_function(self):
        a, b = Point(1, 2), Point(4, 6)
        assert a.distance_to(b) == euclidean_distance(a, b)

    def test_unpacking(self):
        x, y = Point(1.5, 2.5)
        assert (x, y) == (1.5, 2.5)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_toward_partial(self):
        moved = Point(0, 0).toward(Point(10, 0), 4)
        assert moved == Point(4, 0)

    def test_toward_overshoot_clamps_to_target(self):
        assert Point(0, 0).toward(Point(1, 0), 5) == Point(1, 0)

    def test_toward_zero_distance_is_identity(self):
        p = Point(2, 3)
        assert p.toward(Point(9, 9), 0) == p
        assert p.toward(Point(9, 9), -1) == p

    def test_toward_same_point(self):
        p = Point(2, 3)
        assert p.toward(p, 1.0) == p

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points, st.floats(0, 100, allow_nan=False))
    def test_toward_never_overshoots(self, a, b, d):
        moved = a.toward(b, d)
        assert moved.distance_to(b) <= a.distance_to(b) + 1e-9


class TestHelpers:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestBoundingBox:
    def test_basic_properties(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.center == Point(2, 1)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 0, 1)
        with pytest.raises(ValueError):
            BoundingBox(0, 5, 1, 5)
        with pytest.raises(ValueError):
            BoundingBox(3, 0, 1, 1)

    def test_contains_boundary(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(1, 1))
        assert not box.contains(Point(1.0001, 0.5))

    def test_clamp(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.clamp(Point(2, -1)) == Point(1, 0)
        assert box.clamp(Point(0.5, 0.5)) == Point(0.5, 0.5)

    def test_corners(self):
        box = BoundingBox(0, 0, 1, 2)
        corners = list(box.corners())
        assert len(corners) == 4
        assert Point(0, 0) in corners and Point(1, 2) in corners

    def test_unit_square(self):
        box = BoundingBox.unit_square(5)
        assert box.width == 5 and box.height == 5

    def test_unit_square_invalid(self):
        with pytest.raises(ValueError):
            BoundingBox.unit_square(0)

    @given(points)
    def test_clamp_idempotent(self, p):
        box = BoundingBox(-10, -10, 10, 10)
        clamped = box.clamp(p)
        assert box.contains(clamped)
        assert box.clamp(clamped) == clamped
