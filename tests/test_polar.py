"""Tests for repro.core.polar (Algorithm 2)."""

import pytest

from repro.core.guide import build_guide
from repro.core.outcome import Decision
from repro.core.polar import run_polar
from repro.errors import ConfigurationError
from repro.model.events import resample_order
from repro.seeding import derive_random


def _example_guide(example1):
    instance, a, b, module = example1
    guide = build_guide(
        a, b, instance.grid, instance.timeline, instance.travel,
        worker_duration=module.WORKER_DEADLINE,
        task_duration=module.TASK_DEADLINE,
    )
    return instance, guide


class TestExample1:
    def test_matching_size_matches_example5(self, example1):
        instance, guide = _example_guide(example1)
        outcome = run_polar(instance, guide, node_choice="first")
        assert outcome.size == 4

    def test_overflow_objects_ignored(self, example1):
        instance, guide = _example_guide(example1)
        outcome = run_polar(instance, guide, node_choice="first")
        # w3 and w7 exceed their types' predicted counts; r2 and r6 too.
        assert outcome.ignored_workers == 2
        assert outcome.ignored_tasks == 2
        assert outcome.worker_decisions[2].action == Decision.IGNORED
        assert outcome.worker_decisions[6].action == Decision.IGNORED

    def test_w1_stays_and_matches_r1(self, example1):
        instance, guide = _example_guide(example1)
        outcome = run_polar(instance, guide, node_choice="first")
        assert outcome.matching.task_of(0) == 0  # w1 <-> r1
        assert outcome.worker_decisions[0].action == Decision.ASSIGNED

    def test_some_worker_is_dispatched_or_matched_across_areas(self, example1):
        instance, guide = _example_guide(example1)
        outcome = run_polar(instance, guide, node_choice="first")
        actions = {d.action for d in outcome.worker_decisions.values()}
        assert Decision.ASSIGNED in actions
        # The mis-predicted Area 2 task leaves one worker dispatched forever.
        assert Decision.DISPATCHED in actions


class TestInvariants:
    def test_matching_within_population(self, small_instance, small_guide):
        outcome = run_polar(small_instance, small_guide)
        worker_ids = {w.id for w in small_instance.workers}
        task_ids = {t.id for t in small_instance.tasks}
        for worker_id, task_id in outcome.matching:
            assert worker_id in worker_ids
            assert task_id in task_ids

    def test_matched_pairs_follow_guide_lanes(self, small_instance, small_guide):
        outcome = run_polar(small_instance, small_guide)
        for worker_id, task_id in outcome.matching:
            worker = small_instance.worker(worker_id)
            task = small_instance.task(task_id)
            wtype = small_guide.type_index(
                small_guide.timeline.slot_of(worker.start),
                small_guide.grid.area_of(worker.location),
            )
            ttype = small_guide.type_index(
                small_guide.timeline.slot_of(task.start),
                small_guide.grid.area_of(task.location),
            )
            assert small_guide.lane_flow.get((wtype, ttype), 0) > 0

    def test_size_bounded_by_guide(self, small_instance, small_guide):
        outcome = run_polar(small_instance, small_guide)
        assert outcome.size <= small_guide.matched_pairs

    def test_every_object_gets_a_decision(self, small_instance, small_guide):
        outcome = run_polar(small_instance, small_guide)
        assert len(outcome.worker_decisions) == small_instance.n_workers
        assert len(outcome.task_decisions) == small_instance.n_tasks

    def test_deterministic_given_seed(self, small_instance, small_guide):
        a = run_polar(small_instance, small_guide, seed=5)
        b = run_polar(small_instance, small_guide, seed=5)
        assert a.matching.pairs() == b.matching.pairs()

    def test_stream_override(self, small_instance, small_guide):
        stream = resample_order(small_instance.arrival_stream(), derive_random("t", 1))
        outcome = run_polar(small_instance, small_guide, stream=stream)
        assert outcome.size > 0

    def test_unknown_node_choice(self, small_instance, small_guide):
        with pytest.raises(ConfigurationError):
            run_polar(small_instance, small_guide, node_choice="mystery")

    def test_extras_report_guide_size(self, small_instance, small_guide):
        outcome = run_polar(small_instance, small_guide)
        assert outcome.extras["guide_size"] == float(small_guide.matched_pairs)
