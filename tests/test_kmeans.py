"""Tests for repro.prediction.clustering (k-means)."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction.clustering import KMeans


def _blobs(seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((0, 0), 0.2, size=(30, 2))
    b = rng.normal((5, 5), 0.2, size=(30, 2))
    c = rng.normal((0, 5), 0.2, size=(30, 2))
    return np.vstack([a, b, c])


class TestFit:
    def test_recovers_separated_blobs(self):
        data = _blobs()
        model = KMeans(n_clusters=3, seed=1).fit(data)
        labels = model.labels_
        # Each true blob maps to exactly one cluster label.
        for start in (0, 30, 60):
            block = labels[start : start + 30]
            assert len(set(block.tolist())) == 1
        assert len(set(labels.tolist())) == 3

    def test_k_clamped_to_rows(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        model = KMeans(n_clusters=5, seed=0).fit(data)
        assert model.centers_.shape[0] <= 2

    def test_inertia_decreases_with_k(self):
        data = _blobs()
        inertia_1 = KMeans(n_clusters=1, seed=0).fit(data).inertia_
        inertia_3 = KMeans(n_clusters=3, seed=0).fit(data).inertia_
        assert inertia_3 < inertia_1

    def test_deterministic_by_seed(self):
        data = _blobs()
        a = KMeans(n_clusters=3, seed=7).fit(data).labels_
        b = KMeans(n_clusters=3, seed=7).fit(data).labels_
        assert (a == b).all()

    def test_duplicate_points(self):
        data = np.zeros((10, 2))
        model = KMeans(n_clusters=3, seed=0).fit(data)
        assert model.inertia_ == pytest.approx(0.0)


class TestPredict:
    def test_predict_matches_fit_labels(self):
        data = _blobs()
        model = KMeans(n_clusters=3, seed=1).fit(data)
        assert (model.predict(data) == model.labels_).all()

    def test_predict_before_fit(self):
        with pytest.raises(PredictionError):
            KMeans(n_clusters=2).predict(np.zeros((2, 2)))


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(PredictionError):
            KMeans(n_clusters=0)
        with pytest.raises(PredictionError):
            KMeans(n_clusters=1, n_init=0)

    def test_bad_data(self):
        with pytest.raises(PredictionError):
            KMeans(n_clusters=1).fit(np.zeros((0, 2)))
        with pytest.raises(PredictionError):
            KMeans(n_clusters=1).fit(np.zeros(5))
