"""Tests for the churn event model: Departure/Move through every layer.

Covers the event dataclasses and stream merging, the churn generator,
every matcher's churn reactions (depart-before-arrive rejection,
depart-after-match no-op, move-past-deadline, node/slot/pool freeing),
the JSONL codec roundtrip of all three event kinds, the session layer's
churn counters, and the churn-free parity gate (zero-rate configs leave
every stream and matcher bit-identical).
"""

from __future__ import annotations

import io
import random

import pytest

from repro.core.engine import (
    STREAM_ALGORITHMS,
    BatchMatcher,
    GreedyMatcher,
    PolarMatcher,
    PolarOpMatcher,
    TgoaMatcher,
    create_matcher,
)
from repro.core.outcome import DEPARTED, Decision
from repro.errors import ConfigurationError, SimulationError
from repro.model.entities import Task, Worker
from repro.model.events import (
    TASK,
    WORKER,
    Arrival,
    Departure,
    Move,
    build_stream,
    merge_churn,
    resample_order,
)
from repro.serving.replay import (
    build_self_guide,
    dump_stream,
    event_to_record,
    load_stream,
    record_to_event,
)
from repro.serving.session import IteratorSource, MatchingSession
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel
from repro.streams.churn import ChurnConfig, sample_churn, with_churn


def _worker(ident, start, duration=10.0, x=0.0, y=0.0):
    return Worker(id=ident, location=Point(x, y), start=start, duration=duration)


def _task(ident, start, duration=10.0, x=0.0, y=0.0):
    return Task(id=ident, location=Point(x, y), start=start, duration=duration)


def _arrival(entity, kind):
    return Arrival(time=entity.start, seq=0, kind=kind, entity=entity)


# ---------------------------------------------------------------------- #
# Event dataclasses and stream merging
# ---------------------------------------------------------------------- #


class TestEvents:
    def test_departure_rejects_bad_side(self):
        with pytest.raises(SimulationError):
            Departure(time=1.0, seq=0, kind="drone", object_id=0)

    def test_move_rejects_bad_side(self):
        with pytest.raises(SimulationError):
            Move(time=1.0, seq=0, kind="drone", object_id=0, location=Point(0, 0))

    def test_event_kind_tags(self):
        departure = Departure(time=1.0, seq=0, kind=WORKER, object_id=0)
        move = Move(time=1.0, seq=0, kind=TASK, object_id=0, location=Point(1, 1))
        arrival = _arrival(_worker(0, 1.0), WORKER)
        assert arrival.event_kind == "arrival"
        assert departure.event_kind == "departure"
        assert move.event_kind == "move"
        assert departure.is_worker and not departure.is_task
        assert move.is_task and not move.is_worker
        assert arrival.object_id == 0

    def test_merge_orders_churn_after_same_time_arrivals(self):
        stream = build_stream([_worker(0, 2.0)], [_task(0, 2.0)])
        churn = [
            Departure(time=2.0, seq=0, kind=WORKER, object_id=0),
            Move(time=2.0, seq=0, kind=TASK, object_id=0, location=Point(1, 1)),
        ]
        merged = merge_churn(stream, churn)
        kinds = [event.event_kind for event in merged]
        assert kinds == ["arrival", "arrival", "move", "departure"]
        assert [event.seq for event in merged] == [0, 1, 2, 3]

    def test_build_stream_without_churn_is_bit_identical(self):
        workers = [_worker(i, float(i)) for i in range(4)]
        tasks = [_task(i, float(i) + 0.5) for i in range(4)]
        assert build_stream(workers, tasks) == build_stream(workers, tasks, churn=())

    def test_build_stream_merges_churn_by_time(self):
        workers = [_worker(0, 1.0, duration=20.0)]
        tasks = [_task(0, 5.0)]
        churn = [Departure(time=3.0, seq=0, kind=WORKER, object_id=0)]
        merged = build_stream(workers, tasks, churn=churn)
        assert [event.time for event in merged] == [1.0, 3.0, 5.0]
        assert merged[1].event_kind == "departure"

    def test_resample_keeps_churn_after_arrivals_in_tie_groups(self):
        workers = [_worker(i, 2.0) for i in range(3)]
        stream = build_stream(workers, [])
        churn = [Departure(time=2.0, seq=0, kind=WORKER, object_id=1)]
        merged = merge_churn(stream, churn)
        shuffled = resample_order(merged, random.Random(3))
        assert shuffled[-1].event_kind == "departure"
        assert [event.seq for event in shuffled] == list(range(4))

    def test_resample_never_reorders_a_move_behind_its_departure(self):
        """Same-instant move+departure of one object must keep the
        move-before-depart order through any reshuffle."""
        workers = [_worker(i, 2.0, duration=10.0) for i in range(4)]
        stream = build_stream(workers, [])
        churn = [
            Move(time=5.0, seq=0, kind=WORKER, object_id=0, location=Point(1, 1)),
            Departure(time=5.0, seq=0, kind=WORKER, object_id=0),
            Move(time=5.0, seq=0, kind=WORKER, object_id=2, location=Point(2, 2)),
            Departure(time=5.0, seq=0, kind=WORKER, object_id=2),
        ]
        merged = merge_churn(stream, churn)
        for seed in range(20):
            shuffled = resample_order(merged, random.Random(seed))
            kinds = [event.event_kind for event in shuffled[-4:]]
            assert kinds == ["move", "move", "departure", "departure"], kinds

    def test_resample_matches_seed_behaviour_on_churn_free_streams(self):
        workers = [_worker(i, float(i // 2)) for i in range(6)]
        stream = build_stream(workers, [])
        a = resample_order(stream, random.Random(5))
        b = resample_order(stream, random.Random(5))
        assert a == b


# ---------------------------------------------------------------------- #
# The churn generator
# ---------------------------------------------------------------------- #


class TestChurnGenerator:
    def test_zero_rates_sample_nothing(self, small_instance):
        config = ChurnConfig()
        assert not config.any_churn
        assert sample_churn(
            small_instance.arrival_stream(), small_instance.grid.bounds, config
        ) == []

    def test_zero_rate_stream_is_the_arrival_stream(self, small_instance):
        stream = small_instance.churn_stream(ChurnConfig())
        assert stream == small_instance.arrival_stream()

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(departure_rate=1.5)
        with pytest.raises(ConfigurationError):
            ChurnConfig(move_rate=-0.1)

    def test_sampling_is_deterministic(self, small_instance):
        config = ChurnConfig(departure_rate=0.3, move_rate=0.2, seed=9)
        a = small_instance.churn_stream(config)
        b = small_instance.churn_stream(config)
        assert a == b

    def test_churn_events_stay_inside_windows_and_bounds(self, small_instance):
        config = ChurnConfig(departure_rate=0.5, move_rate=0.5, seed=2)
        stream = small_instance.churn_stream(config)
        departures = [e for e in stream if isinstance(e, Departure)]
        moves = [e for e in stream if isinstance(e, Move)]
        assert departures and moves
        entities = {
            (WORKER, w.id): w for w in small_instance.workers
        } | {(TASK, t.id): t for t in small_instance.tasks}
        bounds = small_instance.grid.bounds
        for event in departures + moves:
            entity = entities[(event.kind, event.object_id)]
            assert entity.start <= event.time <= entity.deadline
        for event in moves:
            assert bounds.contains(event.location)
        times = [event.time for event in stream]
        assert times == sorted(times)

    def test_move_precedes_departure_per_entity(self, small_instance):
        config = ChurnConfig(departure_rate=1.0, move_rate=1.0, seed=4)
        stream = small_instance.churn_stream(config)
        seen_departed = set()
        for event in stream:
            key = (event.kind, getattr(event, "object_id", None))
            if isinstance(event, Departure):
                seen_departed.add(key)
            elif isinstance(event, Move):
                assert key not in seen_departed


# ---------------------------------------------------------------------- #
# Matcher churn edge cases
# ---------------------------------------------------------------------- #


def _matchers(small_instance, small_guide):
    travel = small_instance.travel
    grid = small_instance.grid
    return [
        GreedyMatcher(travel, indexed=False),
        GreedyMatcher(travel, grid=grid, indexed=True),
        BatchMatcher(travel, grid, window_minutes=5.0),
        TgoaMatcher(travel, grid=grid, halfway=0, indexed=True),
        TgoaMatcher(travel, grid=grid, halfway=10**9, indexed=False),
        PolarMatcher(small_guide),
        PolarOpMatcher(small_guide),
    ]


class TestMatcherChurnEdges:
    def test_depart_before_arrive_rejected(self, small_instance, small_guide):
        for matcher in _matchers(small_instance, small_guide):
            matcher.begin()
            with pytest.raises(SimulationError):
                matcher.observe(Departure(time=0.0, seq=0, kind=WORKER, object_id=99))

    def test_move_before_arrive_rejected(self, small_instance, small_guide):
        for matcher in _matchers(small_instance, small_guide):
            matcher.begin()
            with pytest.raises(SimulationError):
                matcher.observe(
                    Move(time=0.0, seq=0, kind=TASK, object_id=99,
                         location=Point(1, 1))
                )

    def test_depart_after_match_is_a_noop(self):
        # Co-located worker and task match immediately under greedy.
        travel = TravelModel(velocity=1.0)
        matcher = GreedyMatcher(travel, indexed=False)
        matcher.begin()
        matcher.observe(_arrival(_worker(0, 1.0), WORKER))
        decision = matcher.observe(_arrival(_task(0, 2.0), TASK))
        assert decision.action == Decision.ASSIGNED
        reply = matcher.observe(Departure(time=3.0, seq=2, kind=WORKER, object_id=0))
        assert reply.action == Decision.ASSIGNED  # the pair stands
        outcome = matcher.finish()
        assert outcome.matching.size == 1
        assert outcome.departed_workers == 0

    def test_departure_of_waiting_worker_frees_it(self):
        travel = TravelModel(velocity=1.0)
        matcher = GreedyMatcher(travel, indexed=False)
        matcher.begin()
        matcher.observe(_arrival(_worker(0, 1.0, duration=100.0), WORKER))
        reply = matcher.observe(Departure(time=2.0, seq=1, kind=WORKER, object_id=0))
        assert reply is DEPARTED
        # The departed worker can no longer serve the co-located task.
        decision = matcher.observe(_arrival(_task(0, 3.0), TASK))
        assert decision.action == Decision.WAIT
        outcome = matcher.finish()
        assert outcome.matching.size == 0
        assert outcome.departed_workers == 1
        assert outcome.worker_decisions[0] is DEPARTED

    def test_double_departure_is_a_noop(self):
        travel = TravelModel(velocity=1.0)
        matcher = GreedyMatcher(travel, indexed=False)
        matcher.begin()
        matcher.observe(_arrival(_worker(0, 1.0, duration=100.0), WORKER))
        matcher.observe(Departure(time=2.0, seq=1, kind=WORKER, object_id=0))
        reply = matcher.observe(Departure(time=3.0, seq=2, kind=WORKER, object_id=0))
        assert reply is DEPARTED
        assert matcher.finish().departed_workers == 1

    def test_churn_on_expired_object_is_a_noop(self, small_instance, small_guide):
        """Move or Departure past the object's deadline: the object is
        already gone, so nothing changes — and indexed/dense variants
        must agree even though their lazy-expiry sweeps differ."""
        travel = TravelModel(velocity=1.0)
        grid = Grid.square(10)
        for matcher in (
            GreedyMatcher(travel, indexed=False),
            GreedyMatcher(travel, grid=grid, indexed=True),
            BatchMatcher(travel, grid, window_minutes=1000.0),
            TgoaMatcher(travel, grid=grid, halfway=0, indexed=True),
        ):
            matcher.begin()
            matcher.observe(_arrival(_task(0, 1.0, duration=5.0, x=2.0, y=2.0), TASK))
            move_reply = matcher.observe(
                Move(time=100.0, seq=1, kind=TASK, object_id=0, location=Point(3, 3))
            )
            assert move_reply.action == Decision.WAIT, matcher.algorithm
            depart_reply = matcher.observe(
                Departure(time=101.0, seq=2, kind=TASK, object_id=0)
            )
            assert depart_reply.action == Decision.WAIT, matcher.algorithm
            outcome = matcher.finish()
            assert outcome.departed_tasks == 0, matcher.algorithm
            assert outcome.moves == 0, matcher.algorithm

    def test_indexed_and_naive_greedy_agree_on_churn_of_expired_partner(self):
        """The regression the deadline-aware waiting check fixes: a task
        expires, a later worker scan lazily cleans it up differently per
        variant, then its Departure must still be the same no-op."""
        travel = TravelModel(velocity=1.0)
        grid = Grid.square(10)
        outcomes = []
        for indexed in (False, True):
            matcher = GreedyMatcher(
                travel, grid=grid if indexed else None, indexed=indexed
            )
            matcher.begin()
            matcher.observe(_arrival(_task(1, 0.5, duration=5.0, x=2.0, y=2.0), TASK))
            # A worker arrives long after the task expired: each variant
            # runs its own lazy-expiry path here.
            matcher.observe(
                _arrival(_worker(7, 20.0, duration=50.0, x=2.5, y=2.0), WORKER)
            )
            reply = matcher.observe(
                Departure(time=25.0, seq=2, kind=TASK, object_id=1)
            )
            outcomes.append((reply, matcher.finish()))
        (naive_reply, naive), (indexed_reply, indexed_outcome) = outcomes
        assert naive_reply == indexed_reply
        assert naive.task_decisions == indexed_outcome.task_decisions
        assert naive.departed_tasks == indexed_outcome.departed_tasks == 0

    def test_move_can_create_an_immediate_match(self):
        travel = TravelModel(velocity=1.0)
        matcher = GreedyMatcher(travel, indexed=False)
        matcher.begin()
        # Far-apart worker and task cannot match on arrival.
        matcher.observe(_arrival(_worker(0, 1.0, duration=500.0, x=0.0), WORKER))
        decision = matcher.observe(_arrival(_task(0, 2.0, duration=5.0, x=400.0), TASK))
        assert decision.action == Decision.WAIT
        # Moving the worker next to the task matches at the move instant.
        reply = matcher.observe(
            Move(time=3.0, seq=2, kind=WORKER, object_id=0, location=Point(399.0, 0.0))
        )
        assert reply.action == Decision.ASSIGNED
        assert reply.partner_id == 0
        outcome = matcher.finish()
        assert outcome.matching.size == 1
        assert outcome.moves == 1

    def test_polar_departure_frees_the_node(self, small_guide):
        """A departed occupant's node returns to the free pool: the next
        same-type arrival occupies it instead of being ignored."""
        matcher = PolarMatcher(small_guide, node_choice="first")
        matcher.begin()
        grid = small_guide.grid
        # Find a type with exactly capacity >= 1 on the worker side.
        capacity = small_guide.worker_capacity_list()
        type_index = next(i for i, c in enumerate(capacity) if c >= 1)
        slot = type_index // grid.n_areas
        area = type_index % grid.n_areas
        cell_x = (area % grid.nx) + 0.5
        cell_y = (area // grid.nx) + 0.5
        start = small_guide.timeline.slot_start(slot) + 0.1
        cap = capacity[type_index]
        # Fill every node of the type.
        for ident in range(cap):
            matcher.observe(
                _arrival(_worker(ident, start, x=cell_x, y=cell_y), WORKER)
            )
        overflow = matcher.observe(
            _arrival(_worker(cap, start, x=cell_x, y=cell_y), WORKER)
        )
        assert overflow.action == Decision.IGNORED
        # Depart one waiting occupant -> its node frees -> a further
        # arrival is admitted again.
        victim = next(
            ident for ident in range(cap)
            if matcher._outcome.worker_decisions[ident].action != Decision.ASSIGNED
        )
        reply = matcher.observe(
            Departure(time=start + 0.1, seq=0, kind=WORKER, object_id=victim)
        )
        assert reply is DEPARTED
        readmitted = matcher.observe(
            _arrival(_worker(cap + 1, start, x=cell_x, y=cell_y), WORKER)
        )
        assert readmitted.action != Decision.IGNORED

    def test_polar_op_departed_object_cannot_match(self, small_instance, small_guide):
        """A departed parked object's association slot is vacated, so it
        never appears in the final matching."""
        stream = small_instance.arrival_stream()
        matcher = PolarOpMatcher(small_guide)
        matcher.begin()
        # Park the first few arrivals, then depart every still-waiting
        # worker among them and replay the rest of the stream.
        head, tail = stream[:50], stream[50:]
        for event in head:
            matcher.observe(event)
        when = head[-1].time
        departed_ids = [
            event.entity.id
            for event in head
            if event.is_worker and matcher._is_waiting(WORKER, event.entity.id, when)
        ]
        assert departed_ids, "expected at least one parked worker"
        for seq, ident in enumerate(departed_ids):
            reply = matcher.observe(
                Departure(time=when, seq=seq, kind=WORKER, object_id=ident)
            )
            assert reply is DEPARTED
            assert not matcher._is_waiting(WORKER, ident, when)
        for event in tail:
            matcher.observe(event)
        outcome = matcher.finish()
        assert outcome.departed_workers == len(departed_ids)
        matched_workers = {worker for worker, _task in outcome.matching.pairs()}
        for ident in departed_ids:
            assert ident not in matched_workers
            assert outcome.worker_decisions[ident] is DEPARTED

    def test_polar_op_partnerless_object_visible_to_churn(self):
        """An object whose node has no guide partner can never match, but
        it is still on the platform: its departure must count (symmetric
        with POLAR, whose partnerless occupants hold real nodes)."""
        import numpy as np

        from repro.core.guide import build_guide

        grid = Grid.square(4)
        timeline = Timeline(4, 60.0)
        travel = TravelModel(velocity=0.001)  # immobile: no feasible edges
        worker_counts = np.zeros((4, grid.n_areas), dtype=np.int64)
        task_counts = np.zeros_like(worker_counts)
        worker_counts[0, 0] = 3   # early corner workers ...
        task_counts[3, 15] = 3    # ... late opposite-corner tasks
        guide = build_guide(
            worker_counts, task_counts, grid, timeline, travel, 60.0, 60.0
        )
        assert guide.matched_pairs == 0  # every node is partnerless
        matcher = PolarOpMatcher(guide, node_choice="round_robin")
        matcher.begin()
        decision = matcher.observe(
            _arrival(_worker(0, 1.0, duration=100.0, x=0.5, y=0.5), WORKER)
        )
        assert decision.action == Decision.STAY
        assert matcher._is_waiting(WORKER, 0, 2.0)
        reply = matcher.observe(
            Departure(time=2.0, seq=1, kind=WORKER, object_id=0)
        )
        assert reply is DEPARTED
        assert matcher.finish().departed_workers == 1

    def test_gr_departure_purges_pool_before_next_flush(self):
        travel = TravelModel(velocity=1.0)
        grid = Grid.square(10)
        matcher = BatchMatcher(travel, grid, window_minutes=10.0)
        matcher.begin()
        matcher.observe(_arrival(_worker(0, 1.0, duration=100.0), WORKER))
        matcher.observe(Departure(time=2.0, seq=1, kind=WORKER, object_id=0))
        matcher.observe(_arrival(_task(0, 3.0, duration=100.0), TASK))
        outcome = matcher.finish()
        assert outcome.matching.size == 0
        assert outcome.departed_workers == 1

    def test_gr_churn_event_advances_windows(self):
        """A departure after a window boundary flushes the window first,
        so pairs the platform would have committed still commit."""
        travel = TravelModel(velocity=1.0)
        grid = Grid.square(10)
        matcher = BatchMatcher(travel, grid, window_minutes=5.0)
        matcher.begin()
        matcher.observe(_arrival(_worker(0, 1.0, duration=100.0), WORKER))
        matcher.observe(_arrival(_task(0, 1.5, duration=100.0), TASK))
        # The first boundary (t=6.0) passes before the departure at t=8.
        reply = matcher.observe(
            Departure(time=8.0, seq=2, kind=WORKER, object_id=0)
        )
        # The worker matched in the flushed window -> departure is a noop.
        assert reply.action == Decision.ASSIGNED
        assert matcher.finish().matching.size == 1

    def test_out_of_grid_move_raises_without_corrupting_state(
        self, small_instance, small_guide
    ):
        """A Move to a location outside the grid must raise *before* any
        state is touched — the object stays waiting and can still match
        afterwards."""
        from repro.errors import GridError

        travel = small_instance.travel
        grid = small_instance.grid
        grid_matchers = [
            GreedyMatcher(travel, grid=grid, indexed=True),
            BatchMatcher(travel, grid, window_minutes=5.0),
            TgoaMatcher(travel, grid=grid, halfway=0, indexed=True),
            PolarMatcher(small_guide),
            PolarOpMatcher(small_guide),
        ]
        bad = Point(1e9, 1e9)
        for matcher in grid_matchers:
            matcher.begin()
            matcher.observe(_arrival(_worker(0, 1.0, duration=1e6, x=0.5, y=0.5), WORKER))
            if not matcher._is_waiting(WORKER, 0, 2.0):
                continue  # matched/ignored immediately — nothing to corrupt
            with pytest.raises(GridError):
                matcher.observe(
                    Move(time=2.0, seq=1, kind=WORKER, object_id=0, location=bad)
                )
            # Still waiting, counters untouched, and a legal move works.
            assert matcher._is_waiting(WORKER, 0, 2.0), matcher.algorithm
            assert matcher.moves == 0 and matcher.departed_workers == 0
            matcher.observe(
                Move(time=2.0, seq=2, kind=WORKER, object_id=0,
                     location=Point(1.5, 1.5))
            )

    def test_tgoa_departed_worker_unavailable_in_phase2(self):
        travel = TravelModel(velocity=1.0)
        grid = Grid.square(10)
        matcher = TgoaMatcher(travel, grid=grid, halfway=0, indexed=True)
        matcher.begin()
        matcher.observe(_arrival(_worker(0, 1.0, duration=100.0), WORKER))
        matcher.observe(Departure(time=2.0, seq=1, kind=WORKER, object_id=0))
        decision = matcher.observe(_arrival(_task(0, 3.0, duration=50.0), TASK))
        assert decision.action == Decision.WAIT
        assert matcher.finish().matching.size == 0


# ---------------------------------------------------------------------- #
# Codec roundtrip
# ---------------------------------------------------------------------- #


class TestCodec:
    def test_roundtrip_all_three_kinds(self):
        events = [
            _arrival(_worker(0, 1.0, duration=50.0, x=2.0, y=3.0), WORKER),
            _arrival(_task(0, 2.0, duration=30.0, x=4.0, y=5.0), TASK),
            Move(time=3.0, seq=2, kind=WORKER, object_id=0, location=Point(6.0, 7.0)),
            Departure(time=4.0, seq=3, kind=TASK, object_id=0),
        ]
        buffer = io.StringIO()
        count = dump_stream(events, buffer)
        assert count == 4
        buffer.seek(0)
        config, loaded = load_stream(buffer)
        assert config is None
        assert loaded == [
            Arrival(time=1.0, seq=0, kind=WORKER, entity=events[0].entity),
            Arrival(time=2.0, seq=1, kind=TASK, entity=events[1].entity),
            Move(time=3.0, seq=2, kind=WORKER, object_id=0, location=Point(6.0, 7.0)),
            Departure(time=4.0, seq=3, kind=TASK, object_id=0),
        ]

    def test_record_shapes(self):
        move = Move(time=3.0, seq=0, kind=WORKER, object_id=7, location=Point(1, 2))
        record = event_to_record(move)
        assert record == {
            "kind": "move", "side": "worker", "id": 7, "time": 3.0,
            "x": 1.0, "y": 2.0,
        }
        departure = Departure(time=4.0, seq=0, kind=TASK, object_id=9)
        assert event_to_record(departure) == {
            "kind": "departure", "side": "task", "id": 9, "time": 4.0,
        }

    def test_churn_record_missing_fields_rejected(self):
        with pytest.raises(SimulationError):
            record_to_event({"kind": "departure", "id": 1}, seq=0)
        with pytest.raises(SimulationError):
            record_to_event(
                {"kind": "move", "side": "worker", "id": 1, "time": 2.0}, seq=0
            )

    def test_churn_record_bad_side_rejected(self):
        with pytest.raises(SimulationError):
            record_to_event(
                {"kind": "departure", "side": "drone", "id": 1, "time": 2.0}, seq=0
            )

    def test_out_of_order_churn_rejected_by_loader(self):
        text = (
            '{"kind": "worker", "id": 0, "x": 1, "y": 1, "start": 5.0, "duration": 9}\n'
            '{"kind": "departure", "side": "worker", "id": 0, "time": 2.0}\n'
        )
        with pytest.raises(SimulationError):
            load_stream(io.StringIO(text))

    def test_self_guide_skips_churn_events(self, small_instance):
        clean = build_self_guide(
            small_instance.arrival_stream(),
            small_instance.grid,
            small_instance.timeline,
            small_instance.travel,
        )
        churny = build_self_guide(
            small_instance.churn_stream(
                ChurnConfig(departure_rate=0.3, move_rate=0.2, seed=5)
            ),
            small_instance.grid,
            small_instance.timeline,
            small_instance.travel,
        )
        assert churny.matched_pairs == clean.matched_pairs


# ---------------------------------------------------------------------- #
# Session layer + churn-free parity gate
# ---------------------------------------------------------------------- #


class TestSessionChurn:
    def test_session_counts_churn_separately(self, small_instance, small_guide):
        config = ChurnConfig(departure_rate=0.2, move_rate=0.1, seed=1)
        stream = small_instance.churn_stream(config)
        arrivals = sum(1 for e in stream if isinstance(e, Arrival))
        session = MatchingSession(PolarMatcher(small_guide), IteratorSource(stream))
        outcome = session.run()
        snapshot = session.snapshot()
        assert snapshot.arrivals == arrivals
        assert snapshot.departed == outcome.departed_workers + outcome.departed_tasks
        assert snapshot.moves == outcome.moves
        assert snapshot.departed > 0
        assert "departed=" in snapshot.summary()

    def test_churn_free_summary_has_no_churn_fields(self, small_instance):
        session = MatchingSession(
            GreedyMatcher(small_instance.travel), IteratorSource(small_instance.arrival_stream())
        )
        session.run()
        assert "departed=" not in session.snapshot().summary()

    @pytest.mark.parametrize("algorithm", STREAM_ALGORITHMS)
    def test_churn_free_parity_gate(self, small_instance, small_guide, algorithm):
        """Zero-rate churn configs leave every matcher bit-identical:
        matchings, decisions, counters."""
        stream = small_instance.churn_stream(ChurnConfig())
        reference = MatchingSession(
            create_matcher(algorithm, small_instance, guide=small_guide),
            IteratorSource(small_instance.arrival_stream()),
        ).run()
        outcome = MatchingSession(
            create_matcher(algorithm, small_instance, guide=small_guide),
            IteratorSource(stream),
        ).run()
        assert outcome.matching.pairs() == reference.matching.pairs()
        assert outcome.worker_decisions == reference.worker_decisions
        assert outcome.task_decisions == reference.task_decisions
        assert outcome.ignored_workers == reference.ignored_workers
        assert outcome.ignored_tasks == reference.ignored_tasks
        assert outcome.departed_workers == outcome.departed_tasks == 0
        assert outcome.moves == 0

    @pytest.mark.parametrize("algorithm", STREAM_ALGORITHMS)
    def test_churn_degrades_or_preserves_matching(
        self, small_instance, small_guide, algorithm
    ):
        """The new experiment axis: higher departure rates cannot invent
        matches that the churn-free run lacks by more than noise; the
        run completes and reports churn counters."""
        config = ChurnConfig(departure_rate=0.3, move_rate=0.0, seed=7)
        stream = small_instance.churn_stream(config)
        clean = MatchingSession(
            create_matcher(algorithm, small_instance, guide=small_guide),
            IteratorSource(small_instance.arrival_stream()),
        ).run()
        churned = MatchingSession(
            create_matcher(algorithm, small_instance, guide=small_guide),
            IteratorSource(stream),
        ).run()
        assert churned.departed_workers + churned.departed_tasks > 0
        assert churned.matching.size <= clean.matching.size

    def test_with_churn_requires_time_ordered_stream(self):
        events = [
            _arrival(_worker(0, 5.0), WORKER),
            _arrival(_worker(1, 1.0), WORKER),
        ]
        churn = [Departure(time=6.0, seq=0, kind=WORKER, object_id=0)]
        with pytest.raises(SimulationError):
            merge_churn(events, churn)

    def test_with_churn_zero_rate_returns_input(self, small_instance):
        stream = small_instance.arrival_stream()
        assert with_churn(stream, small_instance.grid.bounds, ChurnConfig()) == stream
