"""Tests for repro.spatial.grid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GridError
from repro.spatial.geometry import BoundingBox, Point
from repro.spatial.grid import Grid


@pytest.fixture
def grid():
    return Grid(BoundingBox(0, 0, 8, 4), nx=4, ny=2)


class TestIndexing:
    def test_n_areas(self, grid):
        assert grid.n_areas == 8

    def test_area_of_row_major(self, grid):
        assert grid.area_of(Point(0.5, 0.5)) == 0
        assert grid.area_of(Point(2.5, 0.5)) == 1
        assert grid.area_of(Point(0.5, 2.5)) == 4
        assert grid.area_of(Point(7.5, 3.5)) == 7

    def test_far_edges_bind_to_last_cell(self, grid):
        assert grid.area_of(Point(8.0, 4.0)) == 7

    def test_out_of_bounds_raises(self, grid):
        with pytest.raises(GridError):
            grid.area_of(Point(8.1, 1))

    def test_cell_coords_roundtrip(self, grid):
        for area in grid.iter_areas():
            col, row = grid.cell_coords(area)
            assert grid.area_index(col, row) == area

    def test_cell_coords_out_of_range(self, grid):
        with pytest.raises(GridError):
            grid.cell_coords(8)
        with pytest.raises(GridError):
            grid.area_index(4, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(GridError):
            Grid(BoundingBox(0, 0, 1, 1), 0, 3)

    def test_square_constructor(self):
        grid = Grid.square(5, cell_size=2.0)
        assert grid.n_areas == 25
        assert grid.bounds.width == 10

    def test_square_invalid(self):
        with pytest.raises(GridError):
            Grid.square(0)

    @given(st.floats(0, 8), st.floats(0, 4))
    def test_area_of_always_in_range(self, x, y):
        grid = Grid(BoundingBox(0, 0, 8, 4), nx=4, ny=2)
        area = grid.area_of(Point(x, y))
        assert 0 <= area < grid.n_areas

    @given(st.floats(0.01, 7.99), st.floats(0.01, 3.99))
    def test_point_inside_its_cell_box(self, x, y):
        grid = Grid(BoundingBox(0, 0, 8, 4), nx=4, ny=2)
        area = grid.area_of(Point(x, y))
        assert grid.cell_box(area).contains(Point(x, y))


class TestGeometry:
    def test_center_of(self, grid):
        assert grid.center_of(0) == Point(1.0, 1.0)
        assert grid.center_of(7) == Point(7.0, 3.0)

    def test_center_distance_symmetric(self, grid):
        assert grid.center_distance(0, 7) == grid.center_distance(7, 0)
        assert grid.center_distance(3, 3) == 0.0

    def test_cell_box(self, grid):
        box = grid.cell_box(5)
        assert (box.x_min, box.y_min, box.x_max, box.y_max) == (2, 2, 4, 4)


class TestNeighbourhood:
    def test_zero_radius_is_self(self, grid):
        assert grid.areas_within(0, 0.0) == [0]

    def test_negative_radius_empty(self, grid):
        assert grid.areas_within(0, -1.0) == []

    def test_radius_covers_neighbours(self, grid):
        # Cell width 2: the horizontal neighbour's centre is 2 away.
        areas = grid.areas_within(0, 2.0)
        assert 1 in areas and 4 in areas and 0 in areas
        assert 5 not in areas  # diagonal centre is 2*sqrt(2) away

    def test_huge_radius_covers_all(self, grid):
        assert sorted(grid.areas_within(3, 100.0)) == list(range(8))

    def test_matches_brute_force(self, grid):
        for area in grid.iter_areas():
            for radius in (0.5, 2.0, 3.5, 5.0):
                expected = [
                    other
                    for other in grid.iter_areas()
                    if grid.center_distance(area, other) <= radius
                ]
                assert sorted(grid.areas_within(area, radius)) == expected


class TestHistogram:
    def test_counts_and_drops(self, grid):
        points = [Point(0.5, 0.5), Point(0.6, 0.4), Point(7.5, 3.5), Point(9, 9)]
        counts = grid.histogram(points)
        assert counts[0] == 2
        assert counts[7] == 1
        assert sum(counts) == 3  # the out-of-bounds point is dropped

    def test_empty(self, grid):
        assert sum(grid.histogram([])) == 0


class TestEquality:
    def test_equal_and_hash(self):
        a = Grid(BoundingBox(0, 0, 4, 4), 2, 2)
        b = Grid(BoundingBox(0, 0, 4, 4), 2, 2)
        c = Grid(BoundingBox(0, 0, 4, 4), 4, 4)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_not_equal_other_type(self):
        assert Grid.square(2) != "grid"
