"""Tests for repro.core.tgoa (the ICDE'16-style extension baseline)."""

import pytest

from repro.core.opt import run_opt
from repro.core.tgoa import run_tgoa
from repro.model.entities import Task, Worker
from repro.model.instance import Instance
from repro.spatial.geometry import Point
from repro.spatial.grid import Grid
from repro.spatial.timeslots import Timeline
from repro.spatial.travel import TravelModel


class TestPhase2Optimality:
    def test_second_half_serves_feasible_newcomers(self):
        """Phase 2 guarantees a newcomer is served whenever the revealed
        feasibility graph admits a matching that covers it — here every
        late task has a free feasible worker and all must be served."""
        grid = Grid.square(10, cell_size=1.0)
        timeline = Timeline(1, 200.0)
        travel = TravelModel(1.0)
        # Two early dummy pairs fill the greedy half; the interesting
        # objects arrive after the halfway point (8 events -> half = 4).
        workers = [
            Worker(id=0, location=Point(0.5, 0.5), start=0.0, duration=5.0),
            Worker(id=1, location=Point(9.5, 9.5), start=1.0, duration=5.0),
            Worker(id=2, location=Point(5.0, 5.0), start=10.0, duration=90.0),  # A
            Worker(id=3, location=Point(3.0, 5.0), start=10.0, duration=90.0),  # B
        ]
        tasks = [
            Task(id=0, location=Point(0.6, 0.5), start=0.5, duration=2.0),
            Task(id=1, location=Point(9.4, 9.5), start=1.5, duration=2.0),
            Task(id=2, location=Point(5.5, 5.0), start=11.0, duration=3.0),
            Task(id=3, location=Point(6.0, 5.0), start=11.5, duration=4.0),
        ]
        instance = Instance(
            workers=workers, tasks=tasks, grid=grid, timeline=timeline, travel=travel
        )
        outcome = run_tgoa(instance)
        assert outcome.matching.task_is_matched(2)
        assert outcome.matching.task_is_matched(3)
        assert outcome.size == 4

    def test_bounded_by_opt(self, small_instance):
        tgoa = run_tgoa(small_instance)
        optimum = run_opt(small_instance, method="exact")
        assert 0 < tgoa.size <= optimum.size

    def test_all_matches_feasible_wait_in_place(self, small_instance):
        from repro.analysis.audit import audit_outcome

        outcome = run_tgoa(small_instance)
        audit = audit_outcome(small_instance, outcome)
        assert audit.violation_rate == 0.0

    def test_every_object_decided(self, small_instance):
        outcome = run_tgoa(small_instance)
        assert len(outcome.worker_decisions) == small_instance.n_workers
        assert len(outcome.task_decisions) == small_instance.n_tasks

    def test_example1_between_greedy_and_opt(self, example1):
        instance, _a, _b, _module = example1
        outcome = run_tgoa(instance)
        assert 2 <= outcome.size <= 6


class TestIndexedParity:
    """The persistent-CellIndex candidate enumeration must reproduce the
    dense scan exactly — same committed pairs, not just the same size."""

    def test_small_instance_pairs_identical(self, small_instance):
        indexed = run_tgoa(small_instance, indexed=True)
        dense = run_tgoa(small_instance, indexed=False)
        assert indexed.matching.pairs() == dense.matching.pairs()

    def test_random_instances_pairs_identical(self):
        from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

        for seed in (1, 2, 3):
            config = SyntheticConfig(
                n_workers=150,
                n_tasks=150,
                grid_side=8,
                n_slots=6,
                task_duration_slots=1.5,
                worker_duration_slots=2.5,
                seed=seed,
            )
            instance = SyntheticGenerator(config).generate()
            indexed = run_tgoa(instance, indexed=True)
            dense = run_tgoa(instance, indexed=False)
            assert indexed.matching.pairs() == dense.matching.pairs(), (
                f"TGOA indexed/dense divergence at seed {seed}"
            )

    def test_example1_pairs_identical(self, example1):
        instance, _a, _b, _module = example1
        indexed = run_tgoa(instance, indexed=True)
        dense = run_tgoa(instance, indexed=False)
        assert indexed.matching.pairs() == dense.matching.pairs()
