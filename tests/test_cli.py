"""Tests for the CLI (python -m repro)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments.results import TableResult

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "fig4_workers", "--scale", "0.5", "--no-memory"]
        )
        assert args.experiment_id == "fig4_workers"
        assert args.scale == 0.5
        assert args.no_memory


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4_workers" in out
        assert "table5_prediction" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig99" in err

    def test_jobs_on_unsupported_experiment_runs_serially(self, capsys):
        """Table/ablation experiments reject --jobs with a note, not a
        crash, and still produce their result."""
        code = main(
            ["run", "ablation_batch_window", "--scale", "0.005", "--no-memory",
             "--jobs", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "does not support --jobs; running serially" in out
        assert "ablation_batch_window" in out

    def test_jobs_flag_accepted_by_parser(self):
        args = build_parser().parse_args(["run", "fig4_workers", "--jobs", "3"])
        assert args.jobs == 3

    def test_run_tiny_and_archive(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "ablation_batch_window",
                "--scale",
                "0.005",
                "--no-memory",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation_batch_window" in out
        archived = tmp_path / "ablation_batch_window.json"
        assert archived.exists()
        payload = json.loads(archived.read_text())
        assert payload["kind"] == "table"

    def test_report_roundtrip(self, tmp_path, capsys):
        table = TableResult(experiment_id="demo")
        table.set("row", "col", 1.0)
        path = tmp_path / "demo.json"
        table.save(path)
        assert main(["report", str(path)]) == 0
        assert "demo" in capsys.readouterr().out


def _config_only_stream(tmp_path) -> str:
    """A JSONL file holding only a config record (no events)."""
    path = tmp_path / "config_only.jsonl"
    path.write_text(
        json.dumps(
            {
                "kind": "config",
                "bounds": [0.0, 0.0, 10.0, 10.0],
                "nx": 10,
                "ny": 10,
                "n_slots": 8,
                "slot_minutes": 180.0,
                "t0": 0.0,
                "velocity": 0.05,
            }
        )
        + "\n"
    )
    return str(path)


class TestHelpText:
    def test_help_lists_every_subcommand(self):
        """The satellite contract: `python -m repro` help names them all."""
        help_text = build_parser().format_help()
        for command in ("list", "run", "report", "dump", "replay", "serve",
                        "loadgen"):
            assert command in help_text


class TestServeCommand:
    def test_bad_port_rejected(self, tmp_path, capsys):
        config = _config_only_stream(tmp_path)
        assert main(["serve", config, "--port", "70000"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_bad_metrics_port_rejected(self, tmp_path, capsys):
        config = _config_only_stream(tmp_path)
        assert main(["serve", config, "--metrics-port", "-4"]) == 2
        assert "--metrics-port" in capsys.readouterr().err

    def test_unknown_algorithm_rejected(self, tmp_path):
        config = _config_only_stream(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", config, "--algorithm", "quantum"])
        assert excinfo.value.code == 2

    def test_tgoa_needs_halfway_without_events(self, tmp_path, capsys):
        config = _config_only_stream(tmp_path)
        assert main(["serve", config, "--algorithm", "tgoa",
                     "--port", "0", "--metrics-port", "0"]) == 2
        assert "halfway" in capsys.readouterr().err

    def test_polar_needs_events_for_self_guide(self, tmp_path, capsys):
        config = _config_only_stream(tmp_path)
        assert main(["serve", config, "--algorithm", "polar",
                     "--port", "0", "--metrics-port", "0"]) == 2
        assert "empty stream" in capsys.readouterr().err

    def test_from_forecast_requires_history(self, tmp_path, capsys):
        config = _config_only_stream(tmp_path)
        assert main(["serve", config, "--algorithm", "polar",
                     "--guide", "from-forecast",
                     "--port", "0", "--metrics-port", "0"]) == 2
        assert "--history" in capsys.readouterr().err

    def test_missing_config_file(self, capsys):
        assert main(["serve", "/nonexistent/stream.jsonl"]) == 2
        assert "cannot open stream" in capsys.readouterr().err

    def test_tgoa_halfway_splits_across_shards(self, small_instance):
        """Each shard sees only its share of the stream, so the phase
        boundary (an arrival count) is divided across shards — otherwise
        sharded TGOA would never leave phase 1."""
        from repro.cli import _matcher_factory

        args = build_parser().parse_args(
            ["serve", "x.jsonl", "--algorithm", "tgoa", "--halfway", "100",
             "--shards", "4"]
        )
        factory = _matcher_factory(
            args, [], small_instance.grid, small_instance.timeline,
            small_instance.travel,
        )
        assert factory(0).halfway == 25
        replay_args = build_parser().parse_args(
            ["replay", "x.jsonl", "--algorithm", "tgoa", "--halfway", "100"]
        )
        replay_factory = _matcher_factory(
            replay_args, [], small_instance.grid, small_instance.timeline,
            small_instance.travel,
        )
        assert replay_factory(0).halfway == 100  # replay is unsharded


class TestLoadgenCommand:
    def test_bad_port_rejected(self, capsys):
        assert main(["loadgen", "--port", "-1", "--workers", "2",
                     "--tasks", "2"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_connection_refused_is_a_clean_error(self, tmp_path, capsys):
        """No gateway listening -> exit 2 with a readable message, not a
        traceback."""
        stream = tmp_path / "two.jsonl"
        stream.write_text(
            '{"kind": "worker", "id": 0, "x": 1.0, "y": 1.0, '
            '"start": 0.0, "duration": 5.0}\n'
        )
        # Port 1 is privileged and unbound: connect() fails immediately.
        assert main(["loadgen", str(stream), "--port", "1"]) == 2
        assert "cannot reach the gateway" in capsys.readouterr().err


class TestReplayForecastGuide:
    def test_from_forecast_requires_history(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        code = main(
            ["dump", "--workers", "80", "--tasks", "80", "--grid-side", "8",
             "--n-slots", "6", "--out", str(stream)]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["replay", str(stream), "--algorithm", "polar",
                     "--guide", "from-forecast"]) == 2
        assert "--history" in capsys.readouterr().err

    def test_unknown_predictor_is_a_clean_error(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        code = main(
            ["dump", "--workers", "60", "--tasks", "60", "--grid-side", "8",
             "--n-slots", "6", "--out", str(stream)]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["replay", str(stream), "--algorithm", "polar",
                     "--guide", "from-forecast", "--history", str(stream),
                     "--predictor", "bogus"]) == 2
        assert "unknown predictor" in capsys.readouterr().err

    def test_replay_with_forecast_guide(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        history = tmp_path / "history.jsonl"
        for seed, path in ((1, stream), (9, history)):
            code = main(
                ["dump", "--workers", "80", "--tasks", "80", "--grid-side",
                 "8", "--n-slots", "6", "--seed", str(seed), "--out",
                 str(path)]
            )
            assert code == 0
        capsys.readouterr()
        code = main(
            ["replay", str(stream), "--algorithm", "polar",
             "--guide", "from-forecast", "--history", str(history),
             "--predictor", "HA"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "forecast guide built" in out
        assert "matched=" in out


class TestGatewaySmokeScript:
    def test_smoke_script_passes(self):
        """The CI gateway smoke (server + loadgen + /snapshot vs offline
        session) passes on a tiny stream."""
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "gateway_smoke.py"),
             "--n-workers", "120", "--n-tasks", "120"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "bit-identical" in result.stdout
        assert "gateway smoke OK" in result.stdout

    def test_smoke_script_worker_pool_parity(self):
        """The worker-pool smoke (--workers P forked shard processes)
        passes its bit-identical parity gate against the in-process
        gateway."""
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "gateway_smoke.py"),
             "--n-workers", "120", "--n-tasks", "120", "--workers", "2"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "worker pool == in-process" in result.stdout
        assert "gateway smoke OK" in result.stdout


class TestChurnCli:
    """The churn flags: dump --churn, replay of churny streams, loadgen."""

    def test_dump_with_churn_writes_churn_records(self, tmp_path, capsys):
        stream = tmp_path / "churny.jsonl"
        code = main(
            ["dump", "--workers", "80", "--tasks", "80", "--grid-side", "8",
             "--n-slots", "6", "--churn", "0.3", "--move-rate", "0.2",
             "--out", str(stream)]
        )
        assert code == 0
        text = stream.read_text()
        assert '"kind": "departure"' in text
        assert '"kind": "move"' in text
        # More lines than the 160 arrivals + 1 config header.
        assert len(text.strip().splitlines()) > 161

    def test_replay_consumes_churny_stream(self, tmp_path, capsys):
        stream = tmp_path / "churny.jsonl"
        assert main(
            ["dump", "--workers", "80", "--tasks", "80", "--grid-side", "8",
             "--n-slots", "6", "--churn", "0.3", "--out", str(stream)]
        ) == 0
        capsys.readouterr()
        for algorithm in ("greedy", "gr", "tgoa", "polar", "polar-op"):
            assert main(["replay", str(stream), "--algorithm", algorithm]) == 0
            assert "matched=" in capsys.readouterr().out

    def test_dump_rejects_bad_churn_rate(self, tmp_path, capsys):
        assert main(
            ["dump", "--workers", "10", "--tasks", "10", "--churn", "1.5",
             "--out", str(tmp_path / "x.jsonl")]
        ) == 2
        assert "departure_rate" in capsys.readouterr().err

    def test_loadgen_churn_on_churny_file_rejected(self, tmp_path, capsys):
        stream = tmp_path / "churny.jsonl"
        assert main(
            ["dump", "--workers", "20", "--tasks", "20", "--churn", "0.5",
             "--out", str(stream)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["loadgen", str(stream), "--churn", "0.1", "--port", "1"]
        ) == 2
        assert "already contains churn" in capsys.readouterr().err


class TestHalfwayFromForecast:
    def test_requires_history(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        assert main(
            ["dump", "--workers", "60", "--tasks", "60", "--grid-side", "8",
             "--n-slots", "6", "--out", str(stream)]
        ) == 0
        capsys.readouterr()
        assert main(["replay", str(stream), "--algorithm", "tgoa",
                     "--halfway", "from-forecast"]) == 2
        assert "--history" in capsys.readouterr().err

    def test_rejects_garbage_halfway(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        assert main(
            ["dump", "--workers", "40", "--tasks", "40", "--grid-side", "8",
             "--n-slots", "6", "--out", str(stream)]
        ) == 0
        capsys.readouterr()
        assert main(["replay", str(stream), "--algorithm", "tgoa",
                     "--halfway", "soon"]) == 2
        assert "--halfway" in capsys.readouterr().err

    def test_unknown_predictor_is_a_clean_error(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        assert main(
            ["dump", "--workers", "40", "--tasks", "40", "--grid-side", "8",
             "--n-slots", "6", "--out", str(stream)]
        ) == 0
        capsys.readouterr()
        assert main(["replay", str(stream), "--algorithm", "tgoa",
                     "--halfway", "from-forecast", "--history", str(stream),
                     "--predictor", "bogus"]) == 2
        assert "unknown predictor" in capsys.readouterr().err

    def test_replay_with_forecast_halfway(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        history = tmp_path / "history.jsonl"
        for seed, path in ((1, stream), (9, history)):
            assert main(
                ["dump", "--workers", "80", "--tasks", "80", "--grid-side",
                 "8", "--n-slots", "6", "--seed", str(seed), "--out",
                 str(path)]
            ) == 0
        capsys.readouterr()
        code = main(
            ["replay", str(stream), "--algorithm", "tgoa",
             "--halfway", "from-forecast", "--history", str(history),
             "--predictor", "HA"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "volume forecast" in out
        assert "halfway=" in out
        assert "matched=" in out

    def test_forecast_halfway_tracks_history_volume(self, tmp_path, capsys):
        """The HA forecast of a one-day history is that day's own counts,
        so halfway == half the history's arrival count."""
        history = tmp_path / "history.jsonl"
        assert main(
            ["dump", "--workers", "70", "--tasks", "70", "--grid-side", "8",
             "--n-slots", "6", "--out", str(history)]
        ) == 0
        capsys.readouterr()
        stream = tmp_path / "events.jsonl"
        assert main(
            ["dump", "--workers", "50", "--tasks", "50", "--grid-side", "8",
             "--n-slots", "6", "--seed", "4", "--out", str(stream)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["replay", str(stream), "--algorithm", "tgoa",
             "--halfway", "from-forecast", "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        assert "halfway=70" in out
