"""Tests for the CLI (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.results import TableResult


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "fig4_workers", "--scale", "0.5", "--no-memory"]
        )
        assert args.experiment_id == "fig4_workers"
        assert args.scale == 0.5
        assert args.no_memory


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4_workers" in out
        assert "table5_prediction" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig99" in err

    def test_jobs_on_unsupported_experiment_runs_serially(self, capsys):
        """Table/ablation experiments reject --jobs with a note, not a
        crash, and still produce their result."""
        code = main(
            ["run", "ablation_batch_window", "--scale", "0.005", "--no-memory",
             "--jobs", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "does not support --jobs; running serially" in out
        assert "ablation_batch_window" in out

    def test_jobs_flag_accepted_by_parser(self):
        args = build_parser().parse_args(["run", "fig4_workers", "--jobs", "3"])
        assert args.jobs == 3

    def test_run_tiny_and_archive(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "ablation_batch_window",
                "--scale",
                "0.005",
                "--no-memory",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation_batch_window" in out
        archived = tmp_path / "ablation_batch_window.json"
        assert archived.exists()
        payload = json.loads(archived.read_text())
        assert payload["kind"] == "table"

    def test_report_roundtrip(self, tmp_path, capsys):
        table = TableResult(experiment_id="demo")
        table.set("row", "col", 1.0)
        path = tmp_path / "demo.json"
        table.save(path)
        assert main(["report", str(path)]) == 0
        assert "demo" in capsys.readouterr().out
